"""The engine's pub/sub: a list of callables and one publish loop.

Deliberately minimal — the zero-overhead contract lives in the *engine*,
which keeps a reference to :attr:`EventBus.subscribers` (the live list
object) and guards every emission site with a single truthiness check on
it.  When no subscriber is attached the engine never constructs an event,
never calls :meth:`EventBus.publish`, and the hot path pays one pointer
test per emission point (measured in ``BENCH_obs_overhead.json``).

Subscriber exceptions propagate to the engine's caller on purpose: strict
invariant probes (:mod:`repro.obs.probes`) *are* subscribers, and their
diagnostics must abort the run at the violating event, not after it.
"""

from __future__ import annotations

from typing import Callable, List

from repro.obs.events import EngineEvent

__all__ = ["EventBus", "Subscriber"]

#: A subscriber is any callable taking one event; return value is ignored.
Subscriber = Callable[[EngineEvent], object]


class EventBus:
    """Ordered fan-out of :class:`~repro.obs.events.EngineEvent` objects."""

    __slots__ = ("subscribers",)

    def __init__(self) -> None:
        #: The live subscriber list.  The engine aliases this exact object
        #: for its hot-path guard — replace its *contents*, never the list.
        self.subscribers: List[Subscriber] = []

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Attach ``fn``; returns it (handy for decorator use)."""
        if not callable(fn):
            raise TypeError(f"subscriber must be callable, got {fn!r}")
        self.subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Detach ``fn`` (no-op if it was never attached)."""
        try:
            self.subscribers.remove(fn)
        except ValueError:
            pass

    def publish(self, event: EngineEvent) -> None:
        """Deliver ``event`` to every subscriber in attach order.

        Iterates over a snapshot so a subscriber may unsubscribe itself
        (or attach others) mid-delivery without skipping anyone.
        """
        for fn in tuple(self.subscribers):
            fn(event)

    def __len__(self) -> int:
        return len(self.subscribers)

    def __bool__(self) -> bool:
        return bool(self.subscribers)

    def __repr__(self) -> str:
        return f"EventBus(subscribers={len(self.subscribers)})"
