"""The incremental lint cache: content-addressed, like the schedule cache.

Two granularities, same idiom as :class:`~repro.fastpath.cache.ScheduleCache`
(the key *is* the file name; writes publish via ``mkstemp`` +
``os.replace``, so a shared cache directory — CI restores it between
runs — is safe under concurrent linters):

* **file entries** — the per-file findings and suppression table of one
  module, keyed by the SHA-256 of its bytes plus the analyzer
  configuration tag.  Any edit changes the key; the stale entry is
  simply never addressed again.
* **tree entries** — the whole-program results (interprocedural
  determinism walk, schema-drift check), keyed by the hash of every
  file's ``(canonical path, content hash)`` pair.  Warm runs over an
  unchanged tree hit this once and skip building the call graph
  entirely — that is what makes ``repro-lint --self`` cheap enough to
  run on every save.

The configuration tag folds in the analyzer version and the rule
registry, so upgrading the linter orphans every old entry at once
instead of replaying findings computed by older detection logic.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.rules import RULES, Finding
from repro.lint.suppressions import SuppressionTable

__all__ = ["LintCache", "default_lint_cache_dir", "LINT_CACHE_ENV"]

#: bump to orphan every existing entry at once
ANALYZER_VERSION = "3"

#: environment variable naming the default lint-cache directory
LINT_CACHE_ENV = "REPRO_LINT_CACHE"

_DEFAULT_DIR = Path(".repro-cache") / "lint"


def default_lint_cache_dir() -> Path:
    """``$REPRO_LINT_CACHE`` if set, else ``.repro-cache/lint``."""
    env = os.environ.get(LINT_CACHE_ENV)
    return Path(env) if env else _DEFAULT_DIR


def _config_tag() -> str:
    registry = ",".join(sorted(RULES))
    return f"repro-lint/{ANALYZER_VERSION}|{registry}"


def content_hash(data: bytes) -> str:
    """The content address of one file's bytes under the current config."""
    digest = hashlib.sha256()
    digest.update(_config_tag().encode("utf-8"))
    digest.update(b"\x00")
    digest.update(data)
    return digest.hexdigest()


def tree_hash(files: Sequence[Tuple[str, str]]) -> str:
    """The content address of a whole tree: ``(canonical path, hash)`` pairs."""
    blob = json.dumps(sorted(files), separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(_config_tag().encode("utf-8"))
    digest.update(b"\x01")
    digest.update(blob.encode("utf-8"))
    return digest.hexdigest()


class LintCache:
    """Content-addressed findings store rooted at one directory."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_lint_cache_dir()
        self.file_hits = 0
        self.file_misses = 0
        self.tree_hits = 0
        self.tree_misses = 0

    # ------------------------------------------------------------------ #
    # low-level entries
    # ------------------------------------------------------------------ #

    def _path_for(self, key: str, kind: str) -> Path:
        return self.root / f"{key}.{kind}.json"

    def _load(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(self._path_for(key, kind).read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _store(self, key: str, kind: str, payload: Dict[str, Any]) -> None:
        path = self._path_for(key, kind)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(prefix=f".{key[:16]}.", suffix=".tmp", dir=self.root)
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a cache that cannot write is a cache that only misses

    # ------------------------------------------------------------------ #
    # file entries
    # ------------------------------------------------------------------ #

    def load_file(
        self, key: str, path: str
    ) -> Optional[Tuple[List[Finding], SuppressionTable, List[int]]]:
        """(findings, suppression table, locally-used lines) or ``None``.

        Finding paths are rewritten to ``path`` — entries are addressed
        by content, not by location.
        """
        data = self._load(key, "file")
        if data is None:
            self.file_misses += 1
            return None
        try:
            findings = [Finding.from_dict(f, path=path) for f in data["findings"]]
            table = SuppressionTable(
                {int(k): frozenset(v) for k, v in data["suppressions"].items()},
                {int(k): int(v) for k, v in data.get("directive_lines", {}).items()},
            )
            used = [int(line) for line in data["used"]]
        except (KeyError, TypeError, ValueError):
            self.file_misses += 1
            return None
        self.file_hits += 1
        return findings, table, used

    def store_file(
        self,
        key: str,
        findings: Sequence[Finding],
        table: SuppressionTable,
        used: Sequence[int],
    ) -> None:
        """Store one file's findings, suppression table, and used lines."""
        self._store(
            key,
            "file",
            {
                "findings": [f.to_dict() for f in findings],
                "suppressions": {str(k): sorted(v) for k, v in table.by_line.items()},
                "directive_lines": {
                    str(k): table.directive_line(k) for k in table.by_line
                },
                "used": sorted(used),
            },
        )

    # ------------------------------------------------------------------ #
    # tree entries
    # ------------------------------------------------------------------ #

    def load_tree(
        self, key: str, path_map: Dict[str, str]
    ) -> Optional[Tuple[List[Finding], Dict[str, List[int]]]]:
        """(whole-program findings, used-suppression lines per canonical path).

        ``path_map`` maps canonical paths back to this invocation's
        spellings so replayed findings anchor to real files.
        """
        data = self._load(key, "tree")
        if data is None:
            self.tree_misses += 1
            return None
        try:
            findings = [
                Finding.from_dict(f, path=path_map.get(str(f["path"]), str(f["path"])))
                for f in data["findings"]
            ]
            used = {
                str(path): [int(line) for line in lines]
                for path, lines in data["used_by_path"].items()
            }
        except (KeyError, TypeError, ValueError):
            self.tree_misses += 1
            return None
        self.tree_hits += 1
        return findings, used

    def store_tree(
        self,
        key: str,
        findings: Sequence[Finding],
        used_by_path: Dict[str, Sequence[int]],
        canonical: Dict[str, str],
    ) -> None:
        """Store whole-program results with canonicalized paths."""
        stored = []
        for finding in findings:
            record = finding.to_dict()
            record["path"] = canonical.get(finding.path, finding.path)
            stored.append(record)
        self._store(
            key,
            "tree",
            {
                "findings": stored,
                "used_by_path": {
                    canonical.get(p, p): sorted(lines) for p, lines in used_by_path.items()
                },
            },
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for both entry granularities."""
        return {
            "file_hits": self.file_hits,
            "file_misses": self.file_misses,
            "tree_hits": self.tree_hits,
            "tree_misses": self.tree_misses,
        }
