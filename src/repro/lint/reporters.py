"""Finding reporters for ``repro-lint``: human text and machine JSON.

The text form is the classic one-line-per-finding ``file:line:col: CODE
message`` (clickable in editors and CI logs) followed by a summary.  The
JSON form is a stable schema (``version`` bumps on breaking change) for
tooling::

    {
      "version": 1,
      "files_scanned": 5,
      "findings": [
        {"code": "RPR101", "rule": "undeclared-visibility",
         "path": "...", "line": 12, "column": 5,
         "symbol": "my_agent", "message": "..."},
        ...
      ],
      "summary": {"total": 1, "by_code": {"RPR101": 1}}
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.lint.rules import RULES, Finding

if TYPE_CHECKING:  # circular at runtime: analyzer imports nothing from here
    from repro.lint.analyzer import LintRun

__all__ = ["render_text", "render_json", "json_payload", "render_rules"]


def _cache_note(run: "Optional[LintRun]") -> str:
    if run is None:
        return ""
    note = f" ({run.files_analyzed} analyzed, {run.files_cached} from cache"
    if run.baselined:
        note += f", {run.baselined} baselined"
    return note + ")"


def render_text(
    findings: Sequence[Finding],
    files_scanned: int,
    *,
    run: "Optional[LintRun]" = None,
) -> str:
    """The human report: one anchored line per finding plus a summary."""
    lines = [
        f"{f.anchor()}: {f.code} [{f.rule.name}] {f.message}"
        + (f"  (in `{f.symbol}`)" if f.symbol else "")
        for f in findings
    ]
    noun = "file" if files_scanned == 1 else "files"
    if findings:
        counts = Counter(f.code for f in findings)
        breakdown = ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
        lines.append(
            f"{len(findings)} finding(s) in {files_scanned} {noun}: {breakdown}"
            + _cache_note(run)
        )
    else:
        lines.append(f"clean: no findings in {files_scanned} {noun}" + _cache_note(run))
    return "\n".join(lines)


def json_payload(
    findings: Sequence[Finding],
    files_scanned: int,
    *,
    run: "Optional[LintRun]" = None,
) -> Dict[str, Any]:
    """The JSON report as a plain dict (schema above)."""
    return {
        "version": 1,
        "files_scanned": files_scanned,
        **(
            {
                "files_analyzed": run.files_analyzed,
                "files_cached": run.files_cached,
                "baselined": run.baselined,
            }
            if run is not None
            else {}
        ),
        "findings": [
            {
                "code": f.code,
                "rule": f.rule.name,
                "path": f.path,
                "line": f.line,
                "column": f.column,
                "symbol": f.symbol,
                "message": f.message,
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "by_code": dict(sorted(Counter(f.code for f in findings).items())),
        },
    }


def render_json(
    findings: Sequence[Finding],
    files_scanned: int,
    *,
    run: "Optional[LintRun]" = None,
) -> str:
    """The JSON report, serialized with stable key order."""
    return json.dumps(json_payload(findings, files_scanned, run=run), indent=2)


def render_rules() -> str:
    """The registry listing behind ``repro-lint --list-rules``."""
    lines: List[str] = []
    for code in sorted(RULES):
        r = RULES[code]
        lines.append(f"{code}  {r.name}")
        lines.append(f"        {r.summary}")
    return "\n".join(lines)
