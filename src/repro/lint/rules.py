"""The ``repro-lint`` rule registry: stable codes, one invariant each.

Every rule guards one clause of the engine's model contract (see
:mod:`repro.sim.engine`): capabilities must be declared before they are
used, communication must go through the action vocabulary, and the
``O(log n)``-bit accounting must not be bypassed.  Codes are stable —
reporters, suppressions and CI configuration refer to them — so a rule is
never renumbered, only retired.

The registry is data, not behaviour: the detection logic lives in
:mod:`repro.lint.analyzer`, keyed by these codes.  Keeping them apart
means a later PR can add a rule by registering a code here and one
detection hook there, without touching the reporters or the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["Rule", "Finding", "RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    """One checkable clause of the model contract.

    ``code`` is the stable identifier (``RPR`` + number); ``capability``
    names the engine flag involved for the declaration rules (``None``
    for the vocabulary/accounting rules).
    """

    code: str
    name: str
    summary: str
    capability: Optional[str] = None


_RULE_TABLE: Tuple[Rule, ...] = (
    Rule(
        code="RPR100",
        name="missing-model-declaration",
        summary=(
            "a module defining behaviour generators must declare its model "
            "with a module-level `MODEL = ProtocolModel(...)`"
        ),
    ),
    Rule(
        code="RPR101",
        name="undeclared-visibility",
        summary=(
            "`See` / `NodeView.neighbor_states` (directly or through a "
            "helper such as `smaller_all_safe`) requires "
            "`MODEL = ProtocolModel(visibility=True)`"
        ),
        capability="visibility",
    ),
    Rule(
        code="RPR102",
        name="undeclared-cloning",
        summary="`CloneSelf` requires `MODEL = ProtocolModel(cloning=True)`",
        capability="cloning",
    ),
    Rule(
        code="RPR103",
        name="undeclared-global-clock",
        summary=(
            "`NodeView.time` / a timed `WaitUntil(wake_at=...)` requires "
            "`MODEL = ProtocolModel(global_clock=True)`"
        ),
        capability="global_clock",
    ),
    Rule(
        code="RPR104",
        name="unused-capability",
        summary=(
            "a capability declared in `MODEL` is never reachable from the "
            "module's behaviours — declare only the power the model grants"
        ),
    ),
    Rule(
        code="RPR110",
        name="whiteboard-mutation-outside-vocabulary",
        summary=(
            "whiteboards may only change through `WriteWhiteboard` / "
            "`UpdateWhiteboard` mutators; mutating a snapshot returned by "
            "`ReadWhiteboard` or `NodeView.wb` changes nothing atomically"
        ),
    ),
    Rule(
        code="RPR120",
        name="non-action-yield",
        summary=(
            "a behaviour generator must yield `Action` values only; the "
            "engine raises `AgentError` on anything else"
        ),
    ),
    Rule(
        code="RPR130",
        name="unaccounted-local-memory-write",
        summary=(
            "agent memory must go through `AgentContext.remember`, which "
            "feeds the `O(log n)`-bit accounting; writing `ctx.memory` or "
            "`ctx.peak_memory_bits` directly defeats `estimate_bits`"
        ),
    ),
    Rule(
        code="RPR200",
        name="obs-imports-sim",
        summary=(
            "observability modules (`repro.obs`) must not import the "
            "simulation layer (`repro.sim`, `repro.protocols`): the engine "
            "imports `obs`, so the reverse direction is an import cycle — "
            "consumers get state via event payloads, not engine objects"
        ),
    ),
    Rule(
        code="RPR210",
        name="exec-imports-frontend",
        summary=(
            "executor modules (`repro.exec`) must not import the CLI or "
            "rendering layers (`repro.cli`, `repro.viz`): the CLI imports "
            "`exec`, so the reverse direction is an import cycle — workers "
            "return JSON-able values and the frontend renders them"
        ),
    ),
    Rule(
        code="RPR220",
        name="fastpath-imports-upper-layer",
        summary=(
            "fast-path modules (`repro.fastpath`) must import only the "
            "core/topology/errors planes — never `repro.sim`, "
            "`repro.protocols`, `repro.analysis`, `repro.exec`, "
            "`repro.obs`, `repro.cli` or `repro.viz`; those layers "
            "consume the fast path, so the reverse direction is an "
            "import cycle"
        ),
    ),
)

#: The registry, keyed by stable code.
RULES: Dict[str, Rule] = {r.code: r for r in _RULE_TABLE}


def rule(code: str) -> Rule:
    """Look up a rule by its stable code (raises ``KeyError`` if retired)."""
    return RULES[code]


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    code: str
    path: str
    line: int
    column: int
    message: str
    symbol: str = ""

    @property
    def rule(self) -> Rule:
        """The violated :class:`Rule`."""
        return RULES[self.code]

    def anchor(self) -> str:
        """``file:line:col`` — the clickable location prefix."""
        return f"{self.path}:{self.line}:{self.column}"
