"""The ``repro-lint`` rule registry: stable codes, one invariant each.

Every rule guards one clause of the engine's model contract (see
:mod:`repro.sim.engine`): capabilities must be declared before they are
used, communication must go through the action vocabulary, and the
``O(log n)``-bit accounting must not be bypassed.  Codes are stable —
reporters, suppressions and CI configuration refer to them — so a rule is
never renumbered, only retired.

The registry is data, not behaviour: the detection logic lives in
:mod:`repro.lint.analyzer`, keyed by these codes.  Keeping them apart
means a later PR can add a rule by registering a code here and one
detection hook there, without touching the reporters or the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["Rule", "Finding", "RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    """One checkable clause of the model contract.

    ``code`` is the stable identifier (``RPR`` + number); ``capability``
    names the engine flag involved for the declaration rules (``None``
    for the vocabulary/accounting rules).
    """

    code: str
    name: str
    summary: str
    capability: Optional[str] = None


_RULE_TABLE: Tuple[Rule, ...] = (
    Rule(
        code="RPR010",
        name="unused-suppression",
        summary=(
            "an inline `# repro-lint: disable=...` comment suppresses a rule "
            "that reports nothing on that line — stale suppressions hide "
            "future regressions, so they are removed when the finding is"
        ),
    ),
    Rule(
        code="RPR011",
        name="stale-baseline-entry",
        summary=(
            "a baseline entry matches no current finding — the violation was "
            "fixed, so the entry is deleted (the ratchet only tightens; "
            "regenerate with `--write-baseline` after removing entries)"
        ),
    ),
    Rule(
        code="RPR100",
        name="missing-model-declaration",
        summary=(
            "a module defining behaviour generators must declare its model "
            "with a module-level `MODEL = ProtocolModel(...)`"
        ),
    ),
    Rule(
        code="RPR101",
        name="undeclared-visibility",
        summary=(
            "`See` / `NodeView.neighbor_states` (directly or through a "
            "helper such as `smaller_all_safe`) requires "
            "`MODEL = ProtocolModel(visibility=True)`"
        ),
        capability="visibility",
    ),
    Rule(
        code="RPR102",
        name="undeclared-cloning",
        summary="`CloneSelf` requires `MODEL = ProtocolModel(cloning=True)`",
        capability="cloning",
    ),
    Rule(
        code="RPR103",
        name="undeclared-global-clock",
        summary=(
            "`NodeView.time` / a timed `WaitUntil(wake_at=...)` requires "
            "`MODEL = ProtocolModel(global_clock=True)`"
        ),
        capability="global_clock",
    ),
    Rule(
        code="RPR104",
        name="unused-capability",
        summary=(
            "a capability declared in `MODEL` is never reachable from the "
            "module's behaviours — declare only the power the model grants"
        ),
    ),
    Rule(
        code="RPR110",
        name="whiteboard-mutation-outside-vocabulary",
        summary=(
            "whiteboards may only change through `WriteWhiteboard` / "
            "`UpdateWhiteboard` mutators; mutating a snapshot returned by "
            "`ReadWhiteboard` or `NodeView.wb` changes nothing atomically"
        ),
    ),
    Rule(
        code="RPR120",
        name="non-action-yield",
        summary=(
            "a behaviour generator must yield `Action` values only; the "
            "engine raises `AgentError` on anything else"
        ),
    ),
    Rule(
        code="RPR130",
        name="unaccounted-local-memory-write",
        summary=(
            "agent memory must go through `AgentContext.remember`, which "
            "feeds the `O(log n)`-bit accounting; writing `ctx.memory` or "
            "`ctx.peak_memory_bits` directly defeats `estimate_bits`"
        ),
    ),
    Rule(
        code="RPR200",
        name="obs-imports-sim",
        summary=(
            "observability modules (`repro.obs`) must not import the "
            "simulation layer (`repro.sim`, `repro.protocols`): the engine "
            "imports `obs`, so the reverse direction is an import cycle — "
            "consumers get state via event payloads, not engine objects"
        ),
    ),
    Rule(
        code="RPR210",
        name="exec-imports-frontend",
        summary=(
            "executor modules (`repro.exec`) must not import the CLI or "
            "rendering layers (`repro.cli`, `repro.viz`): the CLI imports "
            "`exec`, so the reverse direction is an import cycle — workers "
            "return JSON-able values and the frontend renders them"
        ),
    ),
    Rule(
        code="RPR220",
        name="fastpath-imports-upper-layer",
        summary=(
            "fast-path modules (`repro.fastpath`) must import only the "
            "core/topology/errors planes — never `repro.sim`, "
            "`repro.protocols`, `repro.analysis`, `repro.exec`, "
            "`repro.obs`, `repro.cli` or `repro.viz`; those layers "
            "consume the fast path, so the reverse direction is an "
            "import cycle"
        ),
    ),
    Rule(
        code="RPR230",
        name="trace-imports-runtime-layer",
        summary=(
            "tracing/trajectory modules (`repro.obs.trace`, "
            "`repro.obs.runlog`, `repro.obs.prom`) must not import the "
            "simulation, executor, fast-path or frontend layers: every "
            "runtime layer reports *into* tracing, so the reverse "
            "direction is an import cycle — tracer handles are injected "
            "(`bind_tracer`, `set_active_tracer`), never imported"
        ),
    ),
    Rule(
        code="RPR240",
        name="cache-params-incomplete",
        summary=(
            "a strategy constructor knob that steers generation must "
            "appear in `cache_params()`: the schedule cache fingerprints "
            "(strategy, version, dimension, cache_params), so an omitted "
            "knob makes two differently-configured instances share one "
            "fingerprint and serves one configuration the other's stale "
            "schedule"
        ),
    ),
    Rule(
        code="RPR250",
        name="numpy-outside-kernel-backend",
        summary=(
            "`numpy` may only be imported by `fastpath/npkernels.py` — the "
            "kernel-backend seam (`resolve_backend`, `$REPRO_KERNEL_BACKEND`) "
            "is the single place the optional accelerated path is selected "
            "and degraded; a direct `import numpy` elsewhere bypasses the "
            "pure fallback and couples that module to an optional dependency"
        ),
    ),
    Rule(
        code="RPR300",
        name="nondeterministic-rng",
        summary=(
            "code reachable from a schedule entry point (`Strategy.generate`/"
            "`run`, a `Search`, a registered exec task) draws from the "
            "process-global `random` module or an unseeded `random.Random()` "
            "— two workers would compute different schedules for the same "
            "`ScheduleCache` fingerprint; use `random.Random(seed)` with a "
            "seed derived from the cache-key params"
        ),
    ),
    Rule(
        code="RPR310",
        name="wall-clock-read",
        summary=(
            "code reachable from a schedule entry point reads the wall clock "
            "(`time.time`, `time.time_ns`, bare `datetime.now`/`utcnow`/"
            "`today`) — schedule content must be a pure function of the "
            "cache-fingerprint inputs, never of when it was generated"
        ),
    ),
    Rule(
        code="RPR320",
        name="env-dependent-value",
        summary=(
            "code reachable from a schedule entry point reads `os.environ`/"
            "`os.getenv` — workers with different environments would publish "
            "different blobs under one fingerprint; thread configuration "
            "through explicit parameters that participate in the cache key"
        ),
    ),
    Rule(
        code="RPR330",
        name="unstable-iteration-order",
        summary=(
            "code reachable from a schedule entry point iterates a `set`/"
            "`frozenset` or orders by `id()`/`hash()` — both vary between "
            "interpreter runs (PYTHONHASHSEED, allocation addresses), so "
            "move order would differ per worker; wrap in `sorted(...)` with "
            "a value-based key"
        ),
    ),
    Rule(
        code="RPR340",
        name="bare-shared-write",
        summary=(
            "a `fastpath`/`exec` module writes a whole file with bare "
            "`open(..., 'w')`/`write_bytes`/`write_text` and no "
            "`os.replace` publish in the same function — a crash or a "
            "concurrent reader observes a torn file; write to a "
            "`tempfile.mkstemp` sibling and `os.replace` it into place "
            "(append-mode logs are exempt: they are torn-tail tolerant by "
            "design)"
        ),
    ),
    Rule(
        code="RPR350",
        name="tmpfile-not-colocated",
        summary=(
            "a `fastpath`/`exec` module creates its staging tmp file "
            "without `dir=` next to the `os.replace` destination — "
            "`$TMPDIR` may be another filesystem, where `os.replace` "
            "raises `EXDEV` and any copy fallback is no longer atomic; "
            "pass `dir=<destination directory>`"
        ),
    ),
    Rule(
        code="RPR360",
        name="schema-drift-without-version-bump",
        summary=(
            "the declared `CompiledSchedule` column layout or the "
            "checkpoint record schema changed but its format-version tag "
            "did not — old on-disk blobs would decode under the new layout "
            "(or vice versa) instead of missing cleanly; bump the version "
            "tag, then refresh the committed schema baseline with "
            "`--update-schema-baseline`"
        ),
    ),
)

#: The registry, keyed by stable code.
RULES: Dict[str, Rule] = {r.code: r for r in _RULE_TABLE}


def rule(code: str) -> Rule:
    """Look up a rule by its stable code (raises ``KeyError`` if retired)."""
    return RULES[code]


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    code: str
    path: str
    line: int
    column: int
    message: str
    symbol: str = ""

    @property
    def rule(self) -> Rule:
        """The violated :class:`Rule`."""
        return RULES[self.code]

    def anchor(self) -> str:
        """``file:line:col`` — the clickable location prefix."""
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (the lint cache's on-disk record)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "symbol": self.symbol,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any], path: Optional[str] = None) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output.

        ``path`` overrides the stored path: cache entries are addressed by
        file *content*, so the same entry may be replayed for the same
        bytes reached via a different path spelling.
        """
        return Finding(
            code=str(data["code"]),
            path=path if path is not None else str(data["path"]),
            line=int(data["line"]),
            column=int(data["column"]),
            message=str(data["message"]),
            symbol=str(data.get("symbol", "")),
        )
