"""Inline suppressions: ``# repro-lint: disable=RPR320[,RPR330]``.

A suppression is an *audited exception*, so it is deliberately narrow:
it covers exactly one line (the line it sits on, or — for a
comment-only line — the next line that holds code), and exactly the
codes it names.  ``disable=all`` is accepted for generated files.

Every suppression must earn its keep: one that masks nothing on its
line is itself reported (RPR010, *unused-suppression*), so stale
exceptions are removed the moment the underlying finding is fixed —
the same ratchet discipline as the findings baseline.
"""

from __future__ import annotations

import re
import tokenize
from io import StringIO
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.lint.rules import Finding

__all__ = ["SuppressionTable", "apply_suppressions", "unused_suppression_findings"]

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s*]+)")


class SuppressionTable:
    """Per-file map of ``line -> frozenset of suppressed codes``.

    ``"all"`` (or ``*``) suppresses every code on that line.
    """

    def __init__(
        self,
        by_line: Dict[int, FrozenSet[str]],
        directive_lines: Dict[int, int] | None = None,
    ) -> None:
        self.by_line = by_line
        #: covered line -> physical line of the directive comment
        self._directive_lines = directive_lines or {}

    @classmethod
    def from_source(cls, source: str) -> "SuppressionTable":
        try:
            tokens = list(tokenize.generate_tokens(StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls({})
        code_lines: Set[int] = set()
        directives: List[Tuple[int, FrozenSet[str]]] = []
        for tok in tokens:
            line = tok.start[0]
            if tok.type == tokenize.COMMENT:
                match = _DIRECTIVE.search(tok.string)
                if match:
                    codes = frozenset(
                        c.strip().upper().replace("*", "ALL")
                        for c in match.group(1).split(",")
                        if c.strip()
                    )
                    directives.append((line, codes))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                code_lines.add(line)
        by_line: Dict[int, FrozenSet[str]] = {}
        directive_lines: Dict[int, int] = {}
        for line, codes in directives:
            if line in code_lines:
                anchor = line  # trailing comment: covers its own line
            else:  # comment-only line: covers the next line holding code
                anchor = min((c for c in code_lines if c > line), default=line)
            by_line[anchor] = by_line.get(anchor, frozenset()) | codes
            directive_lines[anchor] = line
        return cls(by_line, directive_lines)

    def directive_line(self, covered_line: int) -> int:
        """The physical line of the directive covering ``covered_line``."""
        return self._directive_lines.get(covered_line, covered_line)

    def covers(self, line: int, code: str) -> bool:
        """True when a directive on (or anchored to) ``line`` names ``code``."""
        codes = self.by_line.get(line)
        return bool(codes) and (code.upper() in codes or "ALL" in codes)

    def lines(self) -> Iterable[int]:
        """Every covered line (the anchor, not the physical comment line)."""
        return self.by_line.keys()


def apply_suppressions(
    findings: Sequence[Finding], table: SuppressionTable, path: str
) -> Tuple[List[Finding], Set[int]]:
    """(findings that survive, covered lines whose suppression was used)."""
    kept: List[Finding] = []
    used: Set[int] = set()
    for finding in findings:
        if finding.path == path and table.covers(finding.line, finding.code):
            used.add(finding.line)
        else:
            kept.append(finding)
    return kept, used


def unused_suppression_findings(
    table: SuppressionTable, used_lines: Set[int], path: str
) -> List[Finding]:
    """RPR010 findings for every directive whose line masked nothing."""
    findings = []
    for line in sorted(table.lines()):
        if line in used_lines:
            continue
        codes = ", ".join(sorted(table.by_line[line]))
        findings.append(
            Finding(
                code="RPR010",
                path=path,
                line=table.directive_line(line),
                column=1,
                message=(
                    f"suppression `disable={codes}` matches no finding on "
                    "its line — the violation is gone, so the comment goes "
                    "too (stale suppressions hide future regressions)"
                ),
            )
        )
    return findings
