"""The findings baseline: land new rules warn-only, then ratchet.

A baseline is a committed JSON file of *accepted* findings.  Applying it
splits a run's findings into new (reported, fail the build) and
baselined (counted, silent) — so a new rule family can land against a
legacy codebase without a flag day, while every *new* violation still
fails immediately.

Entries match on ``(path, code, symbol, message-digest)``, deliberately
**not** on line numbers: unrelated edits move lines constantly, and a
baseline that churns on every edit trains people to regenerate it
blindly — which is how accepted findings quietly multiply.  The ratchet
is enforced in the other direction too: an entry matching no current
finding is reported (RPR011, *stale-baseline-entry*) so the file only
ever shrinks as violations are fixed.

Paths are stored repo-relative (anchored at ``src``/``benchmarks``/
``examples``/``tests``) so the same baseline matches from any checkout
location or a ``pip install -e`` layout.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.rules import Finding

__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "canonical_path",
    "default_baseline_path",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1

#: the conventional committed location, applied automatically when present
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_ANCHORS = ("src", "benchmarks", "examples", "tests")


def default_baseline_path() -> Path:
    """``./.repro-lint-baseline.json`` (the committed convention)."""
    return Path(DEFAULT_BASELINE_NAME)


def canonical_path(path: str) -> str:
    """A checkout-independent spelling of ``path`` for baseline keys."""
    parts = Path(path).parts
    for anchor in _ANCHORS:
        if anchor in parts:
            index = parts.index(anchor)
            return "/".join(parts[index:])
    try:
        return Path(path).resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def _entry_key(finding: Finding) -> str:
    digest = hashlib.sha256(finding.message.encode("utf-8")).hexdigest()[:12]
    return "|".join((canonical_path(finding.path), finding.code, finding.symbol, digest))


def load_baseline(path: Path) -> Dict[str, int]:
    """``entry key -> accepted count`` (empty on a missing/invalid file)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        return {}
    entries = data.get("entries")
    if not isinstance(entries, dict):
        return {}
    return {str(k): int(v) for k, v in entries.items()}


def write_baseline(findings: Sequence[Finding], path: Path) -> Path:
    """Accept the given findings: write them as the new baseline (atomic)."""
    entries = Counter(_entry_key(f) for f in findings)
    payload = (
        json.dumps(
            {"version": BASELINE_VERSION, "entries": dict(sorted(entries.items()))},
            indent=2,
        )
        + "\n"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".lint-baseline.", suffix=".tmp", dir=path.parent or ".")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def apply_baseline(
    findings: Sequence[Finding], entries: Dict[str, int], baseline_path: Path
) -> Tuple[List[Finding], int]:
    """(surviving findings + RPR011 stale-entry findings, baselined count).

    Each entry absorbs up to its accepted count of matching findings;
    anything beyond the count is a *new* instance of an old problem and
    is reported.  Entries that absorb nothing are reported as RPR011 so
    the committed file must shrink when violations are fixed.
    """
    budget = dict(entries)
    kept: List[Finding] = []
    baselined = 0
    for finding in findings:
        key = _entry_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            kept.append(finding)
    stale = [key for key, remaining in sorted(budget.items()) if remaining == entries.get(key, 0)]
    for key in stale:
        kept.append(
            Finding(
                code="RPR011",
                path=str(baseline_path),
                line=1,
                column=1,
                message=(
                    f"baseline entry `{key}` matches no current finding — the "
                    "violation was fixed; delete the entry (or regenerate the "
                    "file with `--write-baseline`)"
                ),
            )
        )
    return kept, baselined
