"""``repro.lint`` — static model-compliance analysis for agent protocols.

The engine rejects capability misuse at *runtime* (``See`` without
``visibility=True`` raises :class:`~repro.errors.AgentError`); this
package catches the same contract violations *before* a simulation runs,
by walking the AST of protocol behaviour generators.  Each protocol
module declares the model it claims with
``MODEL = ProtocolModel(...)`` (:mod:`repro.protocols.base`), and the
analyzer cross-checks the declaration against every capability the
module's code can reach — including uses routed through the shared
helpers of ``protocols/base.py``.

Entry points: the ``repro-lint`` console script and the ``repro-search
lint`` subcommand (:mod:`repro.lint.cli`); programmatically,
:func:`analyze_source` / :func:`analyze_paths`.  Rule codes are stable
``RPR1xx`` identifiers documented in ``docs/LINTING.md``.
"""

from repro.lint.analyzer import analyze_path, analyze_paths, analyze_source
from repro.lint.cli import main
from repro.lint.reporters import json_payload, render_json, render_text
from repro.lint.rules import RULES, Finding, Rule

__all__ = [
    "analyze_source",
    "analyze_path",
    "analyze_paths",
    "Finding",
    "Rule",
    "RULES",
    "render_text",
    "render_json",
    "json_payload",
    "main",
]
