"""``repro.lint`` — whole-program static analysis for the repro codebase.

The engine rejects capability misuse at *runtime* (``See`` without
``visibility=True`` raises :class:`~repro.errors.AgentError`); this
package catches the same contract violations *before* a simulation runs,
by walking the AST of protocol behaviour generators.  Each protocol
module declares the model it claims with
``MODEL = ProtocolModel(...)`` (:mod:`repro.protocols.base`), and the
analyzer cross-checks the declaration against every capability the
module's code can reach — including uses routed through the shared
helpers of ``protocols/base.py``.

Since v2 the analyzer is interprocedural: it builds a module-level call
graph over ``src/repro``, walks it from every strategy/search entry
point and registered executor task, and flags reachable determinism
hazards (RPR300–330: unseeded RNG, wall clock, environment reads,
unstable iteration order).  In the ``fastpath``/``exec`` layers it also
enforces crash-safe publication of shared files (RPR340/RPR350) and
that on-disk layouts never drift without a format-version bump (RPR360,
against ``schema_baseline.json``).

Findings can be waived narrowly (``# repro-lint: disable=RPR320``
inline; a committed ``.repro-lint-baseline.json`` for legacy debt) and
both waivers are ratcheted: unused suppressions and stale baseline
entries are themselves findings (RPR010/RPR011).  Repeated runs are
served from a content-addressed cache (:class:`LintCache`), and results
export as SARIF 2.1.0 for CI code scanning.

Entry points: the ``repro-lint`` console script and the ``repro-search
lint`` subcommand (:mod:`repro.lint.cli`); programmatically,
:func:`analyze_source` / :func:`analyze_paths` / :func:`run_analysis`.
Rule codes are stable ``RPRxxx`` identifiers documented in
``docs/LINTING.md``.
"""

from repro.lint.analyzer import (
    LintRun,
    analyze_path,
    analyze_paths,
    analyze_source,
    run_analysis,
    self_paths,
)
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.cli import main
from repro.lint.reporters import json_payload, render_json, render_text
from repro.lint.rules import RULES, Finding, Rule
from repro.lint.sarif import render_sarif, sarif_payload

__all__ = [
    "analyze_source",
    "analyze_path",
    "analyze_paths",
    "run_analysis",
    "self_paths",
    "LintRun",
    "LintCache",
    "load_baseline",
    "write_baseline",
    "Finding",
    "Rule",
    "RULES",
    "render_text",
    "render_json",
    "render_sarif",
    "json_payload",
    "sarif_payload",
    "main",
]
