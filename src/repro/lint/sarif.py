"""SARIF 2.1.0 output: CI code-scanning annotations from ``repro-lint``.

One run object, the full rule registry in ``tool.driver.rules`` (so
viewers can show rule help for codes with zero current results), one
``result`` per finding with a physical location.  Paths are emitted
repo-relative where possible — SARIF consumers resolve
``artifactLocation.uri`` against the checkout root.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.baseline import canonical_path
from repro.lint.rules import RULES, Finding

__all__ = ["render_sarif", "sarif_payload"]

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: advisory codes annotate as warnings; everything else is an error
_WARNING_CODES = frozenset({"RPR010", "RPR011", "RPR104"})


def _rule_descriptor(code: str) -> Dict[str, Any]:
    rule = RULES[code]
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.summary},
        "defaultConfiguration": {
            "level": "warning" if code in _WARNING_CODES else "error"
        },
    }


def _result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.code,
        "ruleIndex": sorted(RULES).index(finding.code),
        "level": "warning" if finding.code in _WARNING_CODES else "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": canonical_path(finding.path),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
        **({"logicalLocations": [{"name": finding.symbol}]} if finding.symbol else {}),
    }


def sarif_payload(findings: Sequence[Finding], files_scanned: int) -> Dict[str, Any]:
    """The SARIF log as a plain dict."""
    return {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [_rule_descriptor(code) for code in sorted(RULES)],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "properties": {"filesScanned": files_scanned},
                "results": [_result(f) for f in findings],
            }
        ],
    }


def render_sarif(findings: Sequence[Finding], files_scanned: int) -> str:
    """The SARIF log, serialized."""
    return json.dumps(sarif_payload(findings, files_scanned), indent=2)
