"""Interprocedural determinism rules RPR300–RPR330.

The content-addressed :class:`~repro.fastpath.cache.ScheduleCache` is
sound only if schedule generation is a *pure function* of the
fingerprint inputs (strategy name/version/params, dimension).  One
unseeded ``random.random()``, one ``time.time()``, one iteration over a
``set`` on the path from a :class:`~repro.core.strategy.Strategy` entry
point to the emitted moves, and two workers publish different blobs
under the same fingerprint — the cache then serves whichever won the
race, silently, forever.

This pass scans every function for *hazard sites* (the four rule
families below), builds the lexical call graph
(:mod:`repro.lint.callgraph`), and reports only the hazards reachable
from a schedule entry point — a benchmark timing itself with
``time.perf_counter`` or the CLI reading ``$REPRO_SCHEDULE_CACHE`` is
not a finding; the same read inside code a ``Strategy.generate`` can
reach is.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import FunctionInfo, ModuleGraph, ProgramGraph
from repro.lint.rules import Finding

__all__ = ["Hazard", "check_determinism", "scan_function_hazards"]

#: value-producing functions of the process-global ``random`` module
_RANDOM_FNS: FrozenSet[str] = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "shuffle",
        "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

_CLOCK_FNS: FrozenSet[str] = frozenset({"time", "time_ns"})
_DATETIME_FNS: FrozenSet[str] = frozenset({"now", "utcnow", "today"})
_ORDERING_SORTERS: FrozenSet[str] = frozenset({"sorted", "min", "max", "sort"})


@dataclass(frozen=True)
class Hazard:
    """One potential determinism violation at one AST node."""

    code: str
    node: ast.AST
    message: str


class _ImportEnv:
    """Which local names denote ``random``/``time``/``datetime``/``os``."""

    def __init__(self, mod: ModuleGraph) -> None:
        self.random_modules: Set[str] = set()
        self.random_names: Dict[str, str] = {}  # local alias -> original name
        self.time_modules: Set[str] = set()
        self.time_names: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()  # datetime/date class aliases
        self.os_modules: Set[str] = set()
        self.environ_names: Set[str] = set()
        self.getenv_names: Set[str] = set()
        for local, dotted in mod.module_aliases.items():
            top = dotted.split(".")[0]
            if top == "random":
                self.random_modules.add(local)
            elif top == "time":
                self.time_modules.add(local)
            elif top == "datetime":
                self.datetime_modules.add(local)
            elif top == "os":
                self.os_modules.add(local)
        for local, (module, name) in mod.from_imports.items():
            if module == "random" and (name in _RANDOM_FNS or name in {"Random", "SystemRandom"}):
                self.random_names[local] = name
            elif module == "time" and name in _CLOCK_FNS:
                self.time_names.add(local)
            elif module == "datetime" and name in {"datetime", "date"}:
                self.datetime_classes.add(local)
            elif module == "os" and name == "environ":
                self.environ_names.add(local)
            elif module == "os" and name == "getenv":
                self.getenv_names.add(local)

    def is_datetime_class(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.datetime_classes
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr in {"datetime", "date"}
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.datetime_modules
        )

    def is_environ(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.environ_names
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == "environ"
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.os_modules
        )


def _iter_own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested functions —
    nested helpers are separate call-graph nodes scanned on their own."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _rng_hazard(call: ast.Call, env: _ImportEnv) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in env.random_modules:
            if func.attr in _RANDOM_FNS:
                return (
                    f"draws from the process-global RNG (`random.{func.attr}`); "
                    "every worker holds a differently-seeded copy"
                )
            if func.attr == "Random" and not call.args and not call.keywords:
                return "`random.Random()` without a seed falls back to OS entropy"
            if func.attr == "SystemRandom":
                return "`random.SystemRandom` is OS entropy and can never replay"
    elif isinstance(func, ast.Name) and func.id in env.random_names:
        original = env.random_names[func.id]
        if original == "Random":
            if not call.args and not call.keywords:
                return "`Random()` without a seed falls back to OS entropy"
            return None
        if original == "SystemRandom":
            return "`SystemRandom` is OS entropy and can never replay"
        return (
            f"draws from the process-global RNG (`{original}` imported "
            "from `random`)"
        )
    return None


def _clock_hazard(call: ast.Call, env: _ImportEnv) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in env.time_modules
            and func.attr in _CLOCK_FNS
        ):
            return f"reads the wall clock via `time.{func.attr}`"
        if func.attr in _DATETIME_FNS and env.is_datetime_class(func.value):
            return f"reads the wall clock via `datetime.{func.attr}()`"
    elif isinstance(func, ast.Name) and func.id in env.time_names:
        return f"reads the wall clock via `{func.id}` imported from `time`"
    return None


def _env_hazards(node: ast.AST, env: _ImportEnv) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "get" and env.is_environ(func.value):
            return "reads `os.environ.get(...)`"
        if isinstance(func, ast.Name) and func.id in env.getenv_names:
            return "reads `os.getenv(...)`"
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "getenv"
            and isinstance(func.value, ast.Name)
            and func.value.id in env.os_modules
        ):
            return "reads `os.getenv(...)`"
    elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
        if env.is_environ(node.value):
            return "reads `os.environ[...]`"
    return None


def _is_set_expr(expr: ast.expr, set_locals: Set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in {"set", "frozenset"}
    return isinstance(expr, ast.Name) and expr.id in set_locals


def _set_typed_locals(func: ast.AST) -> Set[str]:
    """Locals every assignment of which is a set expression."""
    candidates: Dict[str, bool] = {}
    for node in _iter_own_nodes(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                is_set = _is_set_expr(node.value, set())
                previous = candidates.get(target.id)
                candidates[target.id] = is_set if previous is None else (previous and is_set)
    return {name for name, is_set in candidates.items() if is_set}


def _ordering_hazards(func: ast.AST, env: _ImportEnv) -> Iterator[Tuple[ast.AST, str]]:
    set_locals = _set_typed_locals(func)
    for node in _iter_own_nodes(func):
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it, set_locals):
                yield (
                    it,
                    "iterates a `set` — element order varies with "
                    "PYTHONHASHSEED; wrap the iterable in `sorted(...)`",
                )
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name) and node.func.id in _ORDERING_SORTERS:
                name = node.func.id
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "sort":
                name = "sort"
            if name:
                for kw in node.keywords:
                    if (
                        kw.arg == "key"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in {"id", "hash"}
                    ):
                        yield (
                            kw.value,
                            f"orders by `{kw.value.id}()` — object identity/"
                            "hash varies per interpreter run",
                        )


def scan_function_hazards(mod: ModuleGraph, info: FunctionInfo) -> List[Hazard]:
    """Every determinism hazard site in one function body."""
    env = _ImportEnv(mod)
    hazards: List[Hazard] = []
    for node in _iter_own_nodes(info.node):
        if isinstance(node, ast.Call):
            message = _rng_hazard(node, env)
            if message:
                hazards.append(Hazard("RPR300", node, message))
            message = _clock_hazard(node, env)
            if message:
                hazards.append(Hazard("RPR310", node, message))
        message = _env_hazards(node, env)
        if message:
            hazards.append(Hazard("RPR320", node, message))
    for node, message in _ordering_hazards(info.node, env):
        hazards.append(Hazard("RPR330", node, message))
    return hazards


def check_determinism(graph: ProgramGraph) -> List[Finding]:
    """RPR300–RPR330 over every entry-point-reachable function."""
    entries = graph.entry_points()
    if not entries:
        return []
    reached = graph.reachable_from(entries)
    findings: List[Finding] = []
    for node_id in sorted(reached):
        located = graph.function_at(node_id)
        if located is None:
            continue
        mod, info = located
        for hazard in scan_function_hazards(mod, info):
            findings.append(
                Finding(
                    code=hazard.code,
                    path=mod.path,
                    line=getattr(hazard.node, "lineno", 1),
                    column=getattr(hazard.node, "col_offset", 0) + 1,
                    message=(
                        f"{hazard.message} — schedule content must be a pure "
                        "function of the cache fingerprint (reachable from "
                        f"{reached[node_id]})"
                    ),
                    symbol=info.qualname,
                )
            )
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.code))
