"""The ``repro-lint`` command line: whole-program static analysis.

Usage::

    repro-lint path/to/protocol.py other/dir/   # lint user protocols
    repro-lint --self                           # lint this repo (src + benchmarks + examples)
    repro-lint --format sarif --self            # CI code-scanning output
    repro-lint --self --write-baseline          # accept current findings
    repro-lint --self --no-cache                # bypass the incremental cache
    repro-lint --list-rules                     # print the rule registry

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` bad invocation or
unreadable/unparseable input.  ``repro-search lint`` accepts exactly the
same flags (both parsers are built by :func:`add_lint_arguments`) and
returns the same exit codes.

The committed findings baseline (``.repro-lint-baseline.json``) is
applied automatically under ``--self`` when present; ``--no-baseline``
shows the raw findings, ``--baseline PATH`` points at a different file.
The incremental cache (``.repro-cache/lint`` or ``$REPRO_LINT_CACHE``)
is on by default; a warm run over an unchanged tree analyzes 0 files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.analyzer import parse_trees, run_analysis, self_paths
from repro.lint.baseline import default_baseline_path, write_baseline
from repro.lint.cache import LintCache
from repro.lint.reporters import render_json, render_rules, render_text
from repro.lint.sarif import render_sarif
from repro.lint.schema import write_schema_baseline

__all__ = ["main", "build_parser", "run_lint", "add_lint_arguments"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the lint flags to ``parser``.

    This is the single definition of the lint interface — ``repro-lint``
    and ``repro-search lint`` both call it, so the two can never drift.
    """
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--self",
        dest="self_check",
        action="store_true",
        help=(
            "analyze this repository's own code: all of src/repro plus "
            "benchmarks/ and examples/"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=argparse.SUPPRESS,  # deprecated no-op: findings always exit 1
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "findings baseline to apply (default: .repro-lint-baseline.json "
            "when it exists and --self is given)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report raw findings, ignoring any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: write them as the baseline and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="incremental lint cache directory (default: .repro-cache/lint "
        "or $REPRO_LINT_CACHE)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze everything from scratch, ignoring the lint cache",
    )
    parser.add_argument(
        "--update-schema-baseline",
        action="store_true",
        help=(
            "refresh src/repro/lint/schema_baseline.json from the current "
            "format declarations and exit (run after a deliberate layout "
            "change with its version bump)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (exposed for the tests)."""
    return add_lint_arguments(
        argparse.ArgumentParser(
            prog="repro-lint",
            description=(
                "Static determinism, concurrency-safety, and model-compliance "
                "analyzer for the repro codebase "
                "(see docs/LINTING.md for the rule codes)"
            ),
        )
    )


def _resolve_paths(args: argparse.Namespace) -> Optional[List[Path]]:
    paths: List[Path] = [Path(p) for p in args.paths]
    if args.self_check:
        paths.extend(self_paths())
    if not paths:
        print("repro-lint: no paths given (try --self or --list-rules)", file=sys.stderr)
        return None
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro-lint: no such path: {p}", file=sys.stderr)
        return None
    return paths


def _baseline_for(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    default = default_baseline_path()
    if args.self_check and default.exists():
        return default
    return None


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (shared with ``repro-search lint``)."""
    if args.list_rules:
        print(render_rules())
        return 0
    paths = _resolve_paths(args)
    if paths is None:
        return 2

    if args.update_schema_baseline:
        target = write_schema_baseline(parse_trees(paths))
        print(f"repro-lint: schema baseline updated: {target}")
        return 0

    cache = None if args.no_cache else LintCache(args.cache_dir)

    if args.write_baseline:
        # Raw findings (no baseline applied) become the accepted set.
        run = run_analysis(paths, cache=cache, baseline_path=None)
        if run.errors:
            for path, message in run.errors:
                print(f"repro-lint: {path}: {message}", file=sys.stderr)
            return 2
        target = args.baseline if args.baseline is not None else default_baseline_path()
        write_baseline(run.findings, target)
        print(
            f"repro-lint: baseline written: {target} "
            f"({len(run.findings)} accepted finding(s))"
        )
        return 0

    run = run_analysis(paths, cache=cache, baseline_path=_baseline_for(args))
    for path, message in run.errors:
        print(f"repro-lint: {path}: {message}", file=sys.stderr)

    if args.format == "sarif":
        print(render_sarif(run.findings, run.files_scanned))
    elif args.format == "json":
        print(render_json(run.findings, run.files_scanned, run=run))
    else:
        print(render_text(run.findings, run.files_scanned, run=run))

    if run.errors:
        return 2
    return 1 if run.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
