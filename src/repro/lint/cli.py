"""The ``repro-lint`` command line: model-compliance checks, no execution.

Usage::

    repro-lint path/to/protocol.py other/dir/   # lint user protocols
    repro-lint --self                           # lint this repo's protocols
    repro-lint --self --strict                  # ... failing CI on findings
    repro-lint --format json my_protocol.py     # machine-readable report
    repro-lint --list-rules                     # print the rule registry

Exit codes: ``0`` clean (or findings without ``--strict`` — advisory
mode), ``1`` findings under ``--strict``, ``2`` bad invocation or
unparseable input.  The same checks are reachable as ``repro-search
lint ...``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.analyzer import (
    analyze_paths,
    exec_dir,
    fastpath_dir,
    obs_dir,
    protocols_dir,
)
from repro.lint.reporters import render_json, render_rules, render_text

__all__ = ["main", "build_parser", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static model-compliance analyzer for repro agent protocols "
            "(see docs/LINTING.md for the rule codes)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="protocol files or directories to analyze"
    )
    parser.add_argument(
        "--self",
        dest="self_check",
        action="store_true",
        help=(
            "analyze this repository's own protocol implementations and "
            "the observability/executor/fast-path layers' import hygiene"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any finding is reported (CI gate mode)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (shared with ``repro-search lint``)."""
    if args.list_rules:
        print(render_rules())
        return 0
    paths: List[Path] = [Path(p) for p in args.paths]
    if args.self_check:
        paths.append(protocols_dir())
        paths.append(obs_dir())
        paths.append(exec_dir())
        paths.append(fastpath_dir())
    if not paths:
        print("repro-lint: no paths given (try --self or --list-rules)", file=sys.stderr)
        return 2
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro-lint: no such path: {p}", file=sys.stderr)
        return 2
    try:
        findings = analyze_paths(paths)
    except SyntaxError as exc:
        print(f"repro-lint: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return 2
    files_scanned = sum(
        len(list(p.rglob("*.py"))) if p.is_dir() else 1 for p in paths
    )
    render = render_json if args.format == "json" else render_text
    print(render(findings, files_scanned))
    return 1 if (findings and args.strict) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
