"""Concurrency-safety rules RPR340/RPR350: the atomic-publish idiom.

The shared-directory stores built in PRs 4–5 — the content-addressed
:class:`~repro.fastpath.cache.ScheduleCache`, executor checkpoints and
their merged manifests — are only crash-safe because every *whole-file*
write goes through ``tempfile.mkstemp(dir=<destination dir>)`` followed
by ``os.replace``: concurrent workers each publish a complete blob and
readers never observe a torn one.  Nothing enforced that until now; one
bare ``open(path, "w")`` on a cache path re-introduces the torn-read
window on every worker at once.

Both rules are structural and *function-local* (matching how the idiom
is actually written), and apply only to modules inside ``fastpath``/
``exec`` package directories — the layers that write shared state:

* **RPR340** — a whole-file write (``open`` with a ``w``/``x`` mode,
  ``Path.write_bytes``/``write_text``) in a function with no
  ``os.replace``/``os.rename`` publish step.  Append modes are exempt:
  JSONL logs are torn-tail tolerant by design (the checkpoint reader
  proves it).
* **RPR350** — a staging tmp file (``mkstemp``/``NamedTemporaryFile``/
  ``TemporaryFile``) created without ``dir=`` in a function that *does*
  publish via ``os.replace``: ``$TMPDIR`` may live on another
  filesystem, where the rename raises ``EXDEV`` and any copy fallback
  is no longer atomic.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import FrozenSet, List, Optional

from repro.lint.rules import Finding

__all__ = ["check_concurrency"]

#: modes that truncate/create — the whole-file writes RPR340 governs
_WHOLE_FILE_MODES: FrozenSet[str] = frozenset({"w", "wb", "w+", "wb+", "w+b", "x", "xb"})

_TMP_FACTORIES: FrozenSet[str] = frozenset(
    {"mkstemp", "NamedTemporaryFile", "TemporaryFile", "mktemp"}
)

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _applies_to(path: str) -> bool:
    parts = Path(path).parts
    return "fastpath" in parts or "exec" in parts


def _call_attr(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _literal_mode(call: ast.Call) -> Optional[str]:
    """The mode argument of an ``open(...)`` call, when statically known."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    elif isinstance(call.func, ast.Attribute) and call.args:
        # Path.open(mode) — the receiver is the path
        mode = call.args[0]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r" if isinstance(call.func, ast.Attribute) or call.args else None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: give the benefit of the doubt


def _is_open_call(call: ast.Call) -> bool:
    if isinstance(call.func, ast.Name):
        return call.func.id == "open"
    return isinstance(call.func, ast.Attribute) and call.func.attr == "open"


def _publishes_atomically(func: ast.AST) -> bool:
    """Whether ``func`` contains an ``os.replace``/``os.rename`` call."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            attr = _call_attr(node)
            if attr in {"replace", "rename"}:
                target = node.func
                if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                    if target.value.id == "os":
                        return True
                if isinstance(target, ast.Name):  # from os import replace
                    return True
    return False


def _has_dir_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "dir" for kw in call.keywords)


def check_concurrency(tree: ast.AST, path: str) -> List[Finding]:
    """RPR340/RPR350 over one ``fastpath``/``exec`` module."""
    if not _applies_to(path):
        return []
    findings: List[Finding] = []

    def finding(code: str, node: ast.AST, message: str, symbol: str) -> Finding:
        return Finding(
            code=code,
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=symbol,
        )

    functions = [n for n in ast.walk(tree) if isinstance(n, _FunctionNode)]
    for func in functions:
        atomic = _publishes_atomically(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if not atomic:
                if _is_open_call(node):
                    mode = _literal_mode(node)
                    if mode is not None and mode in _WHOLE_FILE_MODES:
                        findings.append(
                            finding(
                                "RPR340",
                                node,
                                f"whole-file `open(..., {mode!r})` with no "
                                "`os.replace` publish in this function — a "
                                "crash or concurrent reader observes a torn "
                                "file; write a `tempfile.mkstemp(dir=...)` "
                                "sibling and `os.replace` it into place",
                                func.name,
                            )
                        )
                elif isinstance(node.func, ast.Attribute) and node.func.attr in {
                    "write_bytes",
                    "write_text",
                }:
                    findings.append(
                        finding(
                            "RPR340",
                            node,
                            f"`{node.func.attr}` rewrites the whole file in "
                            "place with no `os.replace` publish in this "
                            "function — stage the bytes in a "
                            "`tempfile.mkstemp(dir=...)` sibling and "
                            "`os.replace` it into place",
                            func.name,
                        )
                    )
            else:
                if _call_attr(node) in _TMP_FACTORIES and not _has_dir_kwarg(node):
                    findings.append(
                        finding(
                            "RPR350",
                            node,
                            f"`{_call_attr(node)}` without `dir=` stages the "
                            "tmp file in `$TMPDIR`, which may be another "
                            "filesystem — `os.replace` would raise `EXDEV`; "
                            "pass `dir=<destination directory>`",
                            func.name,
                        )
                    )
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.code))
