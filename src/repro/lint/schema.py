"""RPR360: structural fingerprints of the on-disk formats vs a baseline.

Two byte formats cross process and host boundaries: the
:class:`~repro.fastpath.compiled.CompiledSchedule` column layout and the
executor checkpoint record (:class:`~repro.exec.jobs.JobOutcome` rows
under a ``CHECKPOINT_SCHEMA`` header).  Both carry version tags so that
*incompatible* bytes miss cleanly instead of decoding as garbage — but a
tag only protects if it is actually bumped when the layout changes.

This check extracts the declared layout from the AST (``COLUMN_NAMES``
plus the ``FORMAT_VERSION``/``SCHEMA_VERSION`` tags from
``fastpath/compiled.py``; the ``JobOutcome`` field names from
``exec/jobs.py`` paired with ``CHECKPOINT_SCHEMA`` from
``exec/checkpoint.py``), hashes it, and compares against the committed
baseline (``src/repro/lint/schema_baseline.json``).  Layout hash changed
while the version tag did not → RPR360.  Layout and tag both changed →
clean, and ``repro-lint --update-schema-baseline`` refreshes the
baseline in the same commit.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.rules import Finding

__all__ = [
    "check_schema_drift",
    "default_schema_baseline",
    "extract_schemas",
    "write_schema_baseline",
]

#: the committed baseline shipped next to this module
_BASELINE_NAME = "schema_baseline.json"

BASELINE_VERSION = 1


def default_schema_baseline() -> Path:
    """The committed schema baseline (``src/repro/lint/schema_baseline.json``)."""
    return Path(__file__).resolve().parent / _BASELINE_NAME


def _layout_hash(layout: Sequence[str]) -> str:
    blob = json.dumps(list(layout), separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _module_constants(tree: ast.AST) -> Dict[str, object]:
    """Top-level ``NAME = <constant or tuple/list of constants>`` bindings."""
    table: Dict[str, object] = {}
    for node in getattr(tree, "body", []):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if isinstance(value, ast.Constant):
            table[target.id] = value.value
        elif isinstance(value, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) for e in value.elts
        ):
            table[target.id] = [e.value for e in value.elts]  # type: ignore[union-attr]
    return table


def _constant_line(tree: ast.AST, name: str) -> int:
    for node in getattr(tree, "body", []):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return node.lineno
    return 1


def _dataclass_fields(tree: ast.AST, class_name: str) -> Tuple[List[str], int]:
    """(annotated field names of ``class_name``, its line)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            ]
            return fields, node.lineno
    return [], 1


def _match(files: Dict[str, ast.AST], *suffix: str) -> List[Tuple[str, ast.AST]]:
    wanted = tuple(Path(*suffix).parts)
    out = []
    for path, tree in files.items():
        if Path(path).parts[-len(wanted):] == wanted:
            out.append((path, tree))
    return sorted(out)


def extract_schemas(files: Dict[str, ast.AST]) -> List[Dict[str, object]]:
    """Every versioned layout declared by the given ``{path: tree}`` set.

    Returns records ``{"kind", "path", "line", "version_tag",
    "layout", "layout_hash"}`` — one per ``fastpath/compiled.py`` found,
    and one per ``exec/jobs.py`` + ``exec/checkpoint.py`` pair sharing a
    parent ``exec`` directory.
    """
    records: List[Dict[str, object]] = []
    for path, tree in _match(files, "fastpath", "compiled.py"):
        constants = _module_constants(tree)
        columns = constants.get("COLUMN_NAMES")
        if not isinstance(columns, list):
            continue
        tag = f"{constants.get('SCHEMA_VERSION')}+format{constants.get('FORMAT_VERSION')}"
        records.append(
            {
                "kind": "compiled_schedule",
                "path": path,
                "line": _constant_line(tree, "COLUMN_NAMES"),
                "version_tag": tag,
                "layout": [str(c) for c in columns],
                "layout_hash": _layout_hash([str(c) for c in columns]),
            }
        )
    checkpoints = {str(Path(p).parent): (p, t) for p, t in _match(files, "exec", "checkpoint.py")}
    for jobs_path, jobs_tree in _match(files, "exec", "jobs.py"):
        paired = checkpoints.get(str(Path(jobs_path).parent))
        if paired is None:
            continue
        ckpt_path, ckpt_tree = paired
        fields, line = _dataclass_fields(jobs_tree, "JobOutcome")
        if not fields:
            continue
        tag = _module_constants(ckpt_tree).get("CHECKPOINT_SCHEMA")
        records.append(
            {
                "kind": "checkpoint_record",
                "path": jobs_path,
                "line": line,
                "version_tag": str(tag),
                "layout": fields,
                "layout_hash": _layout_hash(fields),
            }
        )
    return records


def _load_baseline(baseline_path: Path) -> Optional[Dict[str, Dict[str, object]]]:
    try:
        data = json.loads(baseline_path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        return None
    schemas = data.get("schemas")
    return schemas if isinstance(schemas, dict) else None


def check_schema_drift(
    files: Dict[str, ast.AST], baseline_path: Optional[Path] = None
) -> List[Finding]:
    """RPR360 findings for every layout that drifted without a tag bump."""
    baseline_path = baseline_path or default_schema_baseline()
    baseline = _load_baseline(baseline_path)
    findings: List[Finding] = []
    for record in extract_schemas(files):
        kind = str(record["kind"])
        known = (baseline or {}).get(kind)
        if known is None:
            continue  # no committed expectation for this layout kind
        if record["layout_hash"] == known.get("layout_hash"):
            continue
        if record["version_tag"] != known.get("version_tag"):
            continue  # drift with a bump: the correct flow
        old = known.get("layout")
        findings.append(
            Finding(
                code="RPR360",
                path=str(record["path"]),
                line=int(record["line"]),  # type: ignore[call-overload]
                column=1,
                message=(
                    f"{kind} layout changed ({old} -> {record['layout']}) but "
                    f"the format-version tag is still {record['version_tag']!r} "
                    "— stale on-disk blobs would decode under the new layout; "
                    "bump the version tag, then run "
                    "`repro-lint --self --update-schema-baseline`"
                ),
                symbol=kind,
            )
        )
    return findings


def write_schema_baseline(
    files: Dict[str, ast.AST], baseline_path: Optional[Path] = None
) -> Path:
    """Regenerate the baseline from the current declarations (atomically)."""
    baseline_path = baseline_path or default_schema_baseline()
    schemas: Dict[str, Dict[str, object]] = {}
    for record in extract_schemas(files):
        schemas[str(record["kind"])] = {
            "version_tag": record["version_tag"],
            "layout": record["layout"],
            "layout_hash": record["layout_hash"],
        }
    payload = json.dumps({"version": BASELINE_VERSION, "schemas": schemas}, indent=2) + "\n"
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".schema_baseline.", suffix=".tmp", dir=baseline_path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, baseline_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return baseline_path
