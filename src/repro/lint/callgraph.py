"""Module-level call graph for the whole-program determinism pass.

The graph is built from the ASTs of every module in one lint run and
resolved *lexically* — no imports are executed.  Nodes are qualified
function names (``repro.core.clean:CleanStrategy.generate``); edges come
from four call shapes the codebase actually uses:

* ``helper(...)`` — a call to a function defined or imported (``from
  repro.x import helper``) in the same module, including re-exports
  chased through package ``__init__`` modules;
* ``mod.helper(...)`` — an attribute call through an imported module
  alias (``from repro import analysis`` / ``import repro.analysis as a``);
* ``self.method(...)`` — a sibling method of the same class;
* ``Cls(...)`` followed by ``obj.method(...)`` — instantiation edges to
  ``Cls.__init__`` plus method edges through locals whose single
  assignment is a resolvable constructor call.

Entry points are the places where nondeterminism poisons shared state:
``generate``/``run`` methods of ``Strategy`` subclasses, ``run``/
``search``/``generate`` methods of classes with ``Search`` in the name,
and functions registered as executor tasks via ``@register_task(...)``.

Unresolvable calls (duck-typed receivers, higher-order dispatch) simply
contribute no edge — the walk is conservative in the *under-approximate*
direction, which is the right default for a linter: a finding is always
anchored to a reachable hazard, never to a guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "FunctionInfo",
    "ModuleGraph",
    "ProgramGraph",
    "build_program_graph",
    "module_name_for",
]

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Method names that make a ``Strategy`` subclass an analysis root.
_STRATEGY_ENTRY_METHODS: FrozenSet[str] = frozenset({"generate", "run"})

#: Method names that make a ``*Search*`` class an analysis root.
_SEARCH_ENTRY_METHODS: FrozenSet[str] = frozenset({"generate", "run", "search"})


def module_name_for(path: Path) -> str:
    """A stable dotted name for ``path`` (graph node prefix).

    Files under a ``repro`` package get their real import path
    (``repro.core.clean``); anything else (benchmarks, examples,
    fixtures) gets ``<parent-dir>.<stem>``, which is unique enough for
    lexical resolution within one run.
    """
    parts = path.parts
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[start:])
    else:
        dotted = list(parts[-2:]) if len(parts) >= 2 else list(parts)
    if dotted and dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][:-3]
    if dotted and dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


@dataclass
class FunctionInfo:
    """One function/method: its AST plus the class context it lives in."""

    qualname: str  # ``Cls.method`` or ``helper``
    node: ast.AST
    class_name: str = ""  # enclosing class, "" for module level
    decorators: Tuple[str, ...] = ()


@dataclass
class ModuleGraph:
    """One parsed module's symbols and lexical import environment."""

    path: str
    name: str
    tree: ast.AST
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: local alias -> dotted module name (``import x.y as z``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local alias -> (dotted module, exported name) for ``from m import n``
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: class name -> base-class name strings (terminal attribute names)
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def parse(cls, tree: ast.AST, path: str, name: str) -> "ModuleGraph":
        mod = cls(path=path, name=name, tree=tree)
        mod._collect_functions(tree, prefix="", class_name="")
        mod._collect_imports()
        return mod

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _collect_functions(self, node: ast.AST, prefix: str, class_name: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FunctionNode):
                qual = f"{prefix}{child.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual,
                    node=child,
                    class_name=class_name,
                    decorators=tuple(_decorator_names(child)),
                )
                self._collect_functions(child, prefix=f"{qual}.", class_name=class_name)
            elif isinstance(child, ast.ClassDef):
                self.class_bases[f"{prefix}{child.name}"] = tuple(
                    _terminal_name(b) for b in child.bases
                )
                self._collect_functions(
                    child, prefix=f"{prefix}{child.name}.", class_name=f"{prefix}{child.name}"
                )
            else:
                self._collect_functions(child, prefix=prefix, class_name=class_name)

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.module_aliases[local] = alias.name if alias.asname else alias.name
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level:
                    module = self._resolve_relative(node.level, module)
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (module, alias.name)

    def _resolve_relative(self, level: int, module: str) -> str:
        """Absolute dotted target of a ``from ...x import y``."""
        base = self.name.split(".")
        if Path(self.path).name != "__init__.py":
            base = base[:-1]
        base = base[: len(base) - (level - 1)] if level > 1 else base
        return ".".join(base + ([module] if module else []))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def methods_of(self, class_name: str) -> Iterator[FunctionInfo]:
        """Every function defined inside class ``class_name``."""
        for info in self.functions.values():
            if info.class_name == class_name:
                yield info


def _terminal_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[...] bases
        return _terminal_name(expr.value)
    return ""


def _decorator_names(func: ast.AST) -> Iterator[str]:
    for deco in getattr(func, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _terminal_name(target)
        if name:
            yield name


class ProgramGraph:
    """Every module of one lint run plus the resolved call edges."""

    def __init__(self, modules: Dict[str, ModuleGraph]) -> None:
        self.modules = modules  # keyed by dotted module name
        #: node id ``module:qualname`` -> callee node ids
        self.edges: Dict[str, Set[str]] = {}
        for mod in modules.values():
            for info in mod.functions.values():
                self.edges[self.node_id(mod, info)] = self._edges_of(mod, info)

    @staticmethod
    def node_id(mod: ModuleGraph, info: FunctionInfo) -> str:
        return f"{mod.name}:{info.qualname}"

    def function_at(self, node_id: str) -> Optional[Tuple[ModuleGraph, FunctionInfo]]:
        """Resolve a ``module:qualname`` node id back to its definition."""
        mod_name, _, qual = node_id.partition(":")
        mod = self.modules.get(mod_name)
        if mod is None:
            return None
        info = mod.functions.get(qual)
        return (mod, info) if info is not None else None

    # ------------------------------------------------------------------ #
    # name resolution
    # ------------------------------------------------------------------ #

    def resolve_export(self, module: str, name: str) -> Optional[str]:
        """Node id of ``module.name``, chasing ``__init__`` re-exports."""
        seen: Set[Tuple[str, str]] = set()
        while (module, name) not in seen:
            seen.add((module, name))
            mod = self.modules.get(module)
            if mod is None:
                return None
            if name in mod.functions:
                return f"{mod.name}:{name}"
            if name in mod.class_bases:
                # constructing/naming a class targets its __init__
                init = f"{name}.__init__"
                if init in mod.functions:
                    return f"{mod.name}:{init}"
                return f"{mod.name}:{name}"  # marker id; no function node
            if name in mod.from_imports:
                module, name = mod.from_imports[name]
                continue
            return None
        return None

    def resolve_class(self, mod: ModuleGraph, name: str) -> Optional[Tuple[ModuleGraph, str]]:
        """(module, class name) for a class referenced as ``name`` in ``mod``."""
        if name in mod.class_bases:
            return mod, name
        target = mod.from_imports.get(name)
        seen: Set[Tuple[str, str]] = set()
        while target is not None and target not in seen:
            seen.add(target)
            module, exported = target
            owner = self.modules.get(module)
            if owner is None:
                return None
            if exported in owner.class_bases:
                return owner, exported
            target = owner.from_imports.get(exported)
        return None

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #

    def _edges_of(self, mod: ModuleGraph, info: FunctionInfo) -> Set[str]:
        edges: Set[str] = set()
        local_types = _local_constructor_types(info.node)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                callee = self._resolve_callable(mod, info, func.id)
                if callee:
                    edges.add(callee)
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                owner, attr = func.value.id, func.attr
                if owner == "self" and info.class_name:
                    sibling = f"{info.class_name}.{attr}"
                    if sibling in mod.functions:
                        edges.add(f"{mod.name}:{sibling}")
                    continue
                if owner in mod.module_aliases:
                    callee = self.resolve_export(mod.module_aliases[owner], attr)
                    if callee:
                        edges.add(callee)
                    continue
                if owner in local_types:
                    resolved = self.resolve_class(mod, local_types[owner])
                    if resolved is not None:
                        owner_mod, cls = resolved
                        method = f"{cls}.{attr}"
                        if method in owner_mod.functions:
                            edges.add(f"{owner_mod.name}:{method}")
        # a constructor call also runs __init__ of the constructed class
        for cls_name in set(local_types.values()):
            resolved = self.resolve_class(mod, cls_name)
            if resolved is not None:
                owner_mod, cls = resolved
                init = f"{cls}.__init__"
                if init in owner_mod.functions:
                    edges.add(f"{owner_mod.name}:{init}")
        return edges

    def _resolve_callable(self, mod: ModuleGraph, info: FunctionInfo, name: str) -> Optional[str]:
        # nested helper of the same function, then module level
        nested = f"{info.qualname}.{name}"
        if nested in mod.functions:
            return f"{mod.name}:{nested}"
        if name in mod.functions:
            return f"{mod.name}:{name}"
        if name in mod.class_bases:
            init = f"{name}.__init__"
            return f"{mod.name}:{init}" if init in mod.functions else None
        if name in mod.from_imports:
            module, exported = mod.from_imports[name]
            return self.resolve_export(module, exported)
        return None

    # ------------------------------------------------------------------ #
    # entry points + reachability
    # ------------------------------------------------------------------ #

    def entry_points(self) -> List[Tuple[str, str]]:
        """``(node id, human label)`` for every analysis root."""
        entries: List[Tuple[str, str]] = []
        for mod in self.modules.values():
            for cls, bases in mod.class_bases.items():
                terminal = cls.rsplit(".", 1)[-1]
                is_strategy = any(b == "Strategy" or b.endswith("Strategy") for b in bases)
                is_search = "Search" in terminal
                if not (is_strategy or is_search):
                    continue
                wanted = _STRATEGY_ENTRY_METHODS if is_strategy else _SEARCH_ENTRY_METHODS
                for info in mod.methods_of(cls):
                    method = info.qualname.rsplit(".", 1)[-1]
                    if method in wanted:
                        entries.append(
                            (self.node_id(mod, info), f"{mod.name}.{info.qualname}")
                        )
            for info in mod.functions.values():
                if "register_task" in info.decorators:
                    entries.append(
                        (self.node_id(mod, info), f"task `{info.qualname}` ({mod.name})")
                    )
        return sorted(set(entries))

    def reachable_from(self, entries: Sequence[Tuple[str, str]]) -> Dict[str, str]:
        """``node id -> label of the first entry point that reaches it``."""
        reached: Dict[str, str] = {}
        for node_id, label in entries:
            stack = [node_id]
            while stack:
                current = stack.pop()
                if current in reached:
                    continue
                reached[current] = label
                stack.extend(sorted(self.edges.get(current, ())))
        return reached


def _local_constructor_types(func: ast.AST) -> Dict[str, str]:
    """Locals whose single assignment is ``Name = ClassLikeName(...)``."""
    assigned: Dict[str, Optional[str]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            cls: Optional[str] = None
            value = node.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                if value.func.id[:1].isupper():
                    cls = value.func.id
            if target.id in assigned and assigned[target.id] != cls:
                assigned[target.id] = None  # conflicting assignments: unknown
            else:
                assigned[target.id] = cls
    return {name: cls for name, cls in assigned.items() if cls}


def build_program_graph(trees: Dict[str, ast.AST]) -> ProgramGraph:
    """Build the graph from ``{file path: parsed tree}``."""
    modules: Dict[str, ModuleGraph] = {}
    for path, tree in trees.items():
        name = module_name_for(Path(path))
        if name in modules:  # two files mapping to one name: keep the first
            continue
        modules[name] = ModuleGraph.parse(tree, path, name)
    return ProgramGraph(modules)
