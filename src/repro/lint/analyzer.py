"""AST analysis behind ``repro-lint``: nothing here executes user code.

The analyzer parses protocol modules, finds their *behaviour generators*
(generator functions yielding engine :class:`~repro.sim.agent.Action`
values, by convention taking a ``ctx`` parameter), infers which engine
capabilities the module's code can reach — directly (``See``,
``CloneSelf``, ``view.time``, ``WaitUntil(wake_at=...)``) or through the
shared helpers of :mod:`repro.protocols.base` (``smaller_all_safe`` needs
visibility) — and cross-checks that against the module's declared
``MODEL = ProtocolModel(...)``.  It also enforces the communication
vocabulary (no out-of-band whiteboard or agent-memory mutation) and that
behaviours only yield actions.

Conventions the inference relies on (all five shipped protocols follow
them, and fixtures/user code must too):

* the :class:`~repro.sim.agent.NodeView` parameter of a wait predicate is
  named ``view``;
* the :class:`~repro.sim.agent.AgentContext` parameter of a behaviour is
  named ``ctx``;
* actions are referenced by their class names (possibly via an aliased
  module attribute, e.g. ``agent.CloneSelf``).

Everything is resolved lexically; the analyzer is deliberately
conservative — a yield of an unresolvable call is assumed fine — so a
clean report is a static guarantee only for the patterns it understands.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.baseline import apply_baseline, canonical_path, load_baseline
from repro.lint.cache import LintCache, content_hash, tree_hash
from repro.lint.callgraph import build_program_graph
from repro.lint.concurrency import check_concurrency
from repro.lint.determinism import check_determinism
from repro.lint.rules import Finding
from repro.lint.schema import check_schema_drift
from repro.lint.suppressions import (
    SuppressionTable,
    apply_suppressions,
    unused_suppression_findings,
)

__all__ = [
    "ACTION_NAMES",
    "LintRun",
    "analyze_source",
    "analyze_path",
    "analyze_paths",
    "collect_files",
    "exec_dir",
    "fastpath_dir",
    "helper_requirements",
    "obs_dir",
    "parse_trees",
    "protocols_dir",
    "run_analysis",
    "self_paths",
]

#: The engine's complete action vocabulary (see :mod:`repro.sim.agent`).
ACTION_NAMES: FrozenSet[str] = frozenset(
    {
        "Move",
        "ReadWhiteboard",
        "WriteWhiteboard",
        "UpdateWhiteboard",
        "See",
        "WaitUntil",
        "CloneSelf",
        "Terminate",
    }
)

#: Builtins that can never produce an ``Action`` — yielded calls to these
#: are reported instead of being given the benefit of the doubt.
_NON_ACTION_BUILTINS: FrozenSet[str] = frozenset(
    {"bool", "dict", "float", "frozenset", "int", "len", "list", "range", "set", "str", "tuple"}
)

#: Method calls that mutate a dict in place (out-of-band board/memory writes).
_MUTATING_METHODS: FrozenSet[str] = frozenset(
    {"clear", "pop", "popitem", "setdefault", "update", "__delitem__", "__setitem__"}
)

#: Module names under which the shared protocol helpers may be imported.
_BASE_MODULE_NAMES: FrozenSet[str] = frozenset(
    {"base", "protocols.base", "repro.protocols.base"}
)

#: Module names that genuinely export the action vocabulary.  A name
#: from :data:`ACTION_NAMES` imported from anywhere else (``Move`` from
#: ``repro.core.schedule`` is the schedule *dataclass*, not the sim
#: action) shadows the action for that module: yielding it is a data
#: pipeline, not a behaviour.
_ACTION_MODULE_NAMES: FrozenSet[str] = frozenset(
    {"agent", "sim.agent", "repro.sim.agent", "repro.sim"}
)

_CAP_TO_CODE = {"visibility": "RPR101", "cloning": "RPR102", "global_clock": "RPR103"}

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)
_AnyFunction = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def protocols_dir() -> Path:
    """The installed location of :mod:`repro.protocols` (for ``--self``)."""
    return Path(__file__).resolve().parent.parent / "protocols"


def obs_dir() -> Path:
    """The installed location of :mod:`repro.obs` (for ``--self``)."""
    return Path(__file__).resolve().parent.parent / "obs"


def exec_dir() -> Path:
    """The installed location of :mod:`repro.exec` (for ``--self``)."""
    return Path(__file__).resolve().parent.parent / "exec"


def fastpath_dir() -> Path:
    """The installed location of :mod:`repro.fastpath` (for ``--self``)."""
    return Path(__file__).resolve().parent.parent / "fastpath"


def self_paths() -> List[Path]:
    """Everything ``--self`` scans: all of ``repro`` plus, when running
    from a checkout, ``benchmarks/`` and ``examples/``."""
    package_root = Path(__file__).resolve().parent.parent  # src/repro
    roots = [package_root]
    if package_root.parent.name == "src":
        repo_root = package_root.parent.parent
        for extra in ("benchmarks", "examples"):
            candidate = repo_root / extra
            if candidate.is_dir():
                roots.append(candidate)
    return roots


# --------------------------------------------------------------------- #
# capability triggers
# --------------------------------------------------------------------- #


def _call_name(func: ast.expr) -> Optional[str]:
    """The terminal name of a call target (``See`` for ``agent.See``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _capability_triggers(root: ast.AST) -> Iterator[Tuple[str, ast.AST, str]]:
    """Yield ``(capability, node, why)`` for every direct use under ``root``."""
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name == "See":
                yield "visibility", node, "yields a `See` action"
            elif name == "CloneSelf":
                yield "cloning", node, "yields a `CloneSelf` action"
            elif name == "WaitUntil":
                for kw in node.keywords:
                    if kw.arg == "wake_at" and not (
                        isinstance(kw.value, ast.Constant) and kw.value.value is None
                    ):
                        yield "global_clock", kw.value, "schedules a timed `WaitUntil` wake-up"
        elif isinstance(node, ast.Attribute):
            if node.attr == "neighbor_states":
                yield "visibility", node, "reads `view.neighbor_states`"
            elif node.attr == "time" and isinstance(node.value, ast.Name) and node.value.id == "view":
                yield "global_clock", node, "reads `view.time`"


@lru_cache(maxsize=1)
def helper_requirements() -> Dict[str, FrozenSet[str]]:
    """Capability needs of each ``repro.protocols.base`` helper, inferred
    from its own AST (so new helpers are picked up without touching lint)."""
    source = (protocols_dir() / "base.py").read_text()
    tree = ast.parse(source)
    table: Dict[str, FrozenSet[str]] = {}
    for node in tree.body:
        if isinstance(node, _FunctionNode):
            caps = frozenset(cap for cap, _, _ in _capability_triggers(node))
            table[node.name] = caps
    return table


# --------------------------------------------------------------------- #
# module analysis
# --------------------------------------------------------------------- #


def _iter_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree, stopping at nested function boundaries."""
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(child, (*_FunctionNode, ast.Lambda)):
            yield from _iter_scope(child)


def _own_yields(func: _AnyFunction) -> List[ast.expr]:
    """The yield expressions belonging to ``func`` itself."""
    return [n for n in _iter_scope(func) if isinstance(n, (ast.Yield, ast.YieldFrom))]


def _takes_ctx(func: _AnyFunction) -> bool:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    return "ctx" in names


def _is_action_call(
    value: Optional[ast.expr], shadowed: FrozenSet[str] = frozenset()
) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = _call_name(value.func)
    return name in ACTION_NAMES and name not in shadowed


class _Module:
    """One parsed module plus the lexical facts the rules consume."""

    def __init__(self, source: str, path: str) -> None:
        self.path = path
        self.tree = ast.parse(source, filename=path)
        self.symbols: Dict[ast.AST, str] = {}
        self._map_symbols(self.tree, "")
        self.functions = [n for n in ast.walk(self.tree) if isinstance(n, _FunctionNode)]
        # A *strong* behaviour takes a ``ctx`` parameter or directly yields
        # an action constructor.  ``yield from``-only delegators count as
        # behaviours too, but only in modules that have a strong behaviour
        # — otherwise every plain generator pipeline (topology iterators,
        # the analyzer itself) would be mistaken for a protocol module.
        shadowed = self._find_shadowed_actions()
        strong = [
            f
            for f in self.functions
            if _own_yields(f)
            and (
                _takes_ctx(f)
                or any(
                    _is_action_call(getattr(y, "value", None), shadowed)
                    for y in _own_yields(f)
                )
            )
        ]
        delegators = [
            f
            for f in self.functions
            if f not in strong
            and _own_yields(f)
            and any(isinstance(y, ast.YieldFrom) for y in _own_yields(f))
        ]
        self.behaviours = (
            sorted(strong + delegators, key=lambda f: f.lineno) if strong else []
        )
        self.model_node, self.declared = self._find_model()
        self.helper_aliases, self.base_module_aliases = self._find_imports()

    # -- construction helpers ----------------------------------------- #

    def _map_symbols(self, node: ast.AST, current: str) -> None:
        for child in ast.iter_child_nodes(node):
            self.symbols[child] = current
            if isinstance(child, _FunctionNode):
                self._map_symbols(child, child.name)
            else:
                self._map_symbols(child, current)

    def _find_model(self) -> Tuple[Optional[ast.AST], Optional[FrozenSet[str]]]:
        """The module-level ``MODEL = ProtocolModel(...)`` declaration."""
        for node in self.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not (isinstance(target, ast.Name) and target.id == "MODEL"):
                continue
            if isinstance(value, ast.Call) and _call_name(value.func) == "ProtocolModel":
                declared = frozenset(
                    kw.arg
                    for kw in value.keywords
                    if kw.arg is not None
                    and kw.arg in _CAP_TO_CODE
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                )
                return node, declared
            return node, None  # declared, but not statically readable
        return None, None

    def _find_shadowed_actions(self) -> FrozenSet[str]:
        """Action-vocabulary names this module binds to something else.

        ``from repro.core.schedule import Move`` rebinds ``Move`` to the
        schedule dataclass; a local ``class Move`` does the same.  Such
        modules yield these values as *data* (streaming generators,
        column materializers), so the behaviour-detection heuristic must
        not read those yields as sim actions.  Importing from the real
        action module (:data:`_ACTION_MODULE_NAMES`) never shadows, and
        a bare unimported name keeps its action reading.
        """
        shadowed: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module in _ACTION_MODULE_NAMES:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    if local in ACTION_NAMES:
                        shadowed.add(local)
            elif isinstance(node, (ast.ClassDef, *_FunctionNode)):
                if node.name in ACTION_NAMES:
                    shadowed.add(node.name)
        return frozenset(shadowed)

    def _find_imports(self) -> Tuple[Dict[str, str], Set[str]]:
        """Local names bound to base helpers, and to the base module itself."""
        helpers: Dict[str, str] = {}
        modules: Set[str] = set()
        known = helper_requirements()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module in _BASE_MODULE_NAMES or (node.level and module == "base"):
                    for alias in node.names:
                        if alias.name in known:
                            helpers[alias.asname or alias.name] = alias.name
                elif module in {"repro.protocols", "protocols"} or (
                    node.level and module == ""
                ):
                    for alias in node.names:
                        if alias.name == "base":
                            modules.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _BASE_MODULE_NAMES:
                        modules.add(alias.asname or alias.name.split(".")[0])
        return helpers, modules

    # -- shared accessors ---------------------------------------------- #

    def symbol(self, node: ast.AST) -> str:
        """The enclosing function name of ``node`` ("" at module level)."""
        return self.symbols.get(node, "")

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        """Anchor a finding at ``node``."""
        return Finding(
            code=code,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=self.symbol(node),
        )


# --------------------------------------------------------------------- #
# the rules
# --------------------------------------------------------------------- #


def _capability_usages(mod: _Module) -> List[Tuple[str, ast.AST, str]]:
    """Every reachable capability use: direct triggers plus helper calls."""
    usages = list(_capability_triggers(mod.tree))
    known = helper_requirements()
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        helper: Optional[str] = None
        if isinstance(node.func, ast.Name) and node.func.id in mod.helper_aliases:
            helper = mod.helper_aliases[node.func.id]
        elif (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in mod.base_module_aliases
            and node.func.attr in known
        ):
            helper = node.func.attr
        if helper:
            for cap in sorted(known[helper]):
                usages.append((cap, node, f"calls `{helper}`, which needs {cap}"))
    return usages


def _check_model(mod: _Module) -> List[Finding]:
    """RPR100–RPR104: declaration present, sufficient, and not inflated."""
    findings: List[Finding] = []
    if not mod.behaviours:
        return findings  # a helper module; requirements surface at call sites
    if mod.model_node is None:
        anchor = mod.behaviours[0]
        findings.append(
            mod.finding(
                "RPR100",
                anchor,
                "module defines behaviour generators but no module-level "
                "`MODEL = ProtocolModel(...)` declaration",
            )
        )
        return findings
    if mod.declared is None:
        return findings  # MODEL exists but is not statically readable
    usages = _capability_usages(mod)
    seen: Set[Tuple[str, int]] = set()
    used_caps: Set[str] = set()
    for cap, node, why in usages:
        used_caps.add(cap)
        key = (cap, getattr(node, "lineno", 1))
        if cap not in mod.declared and key not in seen:
            seen.add(key)
            findings.append(
                mod.finding(
                    _CAP_TO_CODE[cap],
                    node,
                    f"{why}, but `MODEL` does not declare `{cap}=True`",
                )
            )
    for cap in sorted(mod.declared - used_caps):
        findings.append(
            mod.finding(
                "RPR104",
                mod.model_node,
                f"`MODEL` declares `{cap}=True` but no behaviour in this "
                "module can reach that capability",
            )
        )
    return findings


def _check_board_mutation(mod: _Module) -> List[Finding]:
    """RPR110: mutating board snapshots instead of yielding mutators."""
    findings: List[Finding] = []
    for func in mod.functions:
        snapshots: Set[str] = set()
        nodes = list(_iter_scope(func))
        for node in nodes:  # first pass: names bound to board reads
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Yield) and isinstance(value.value, ast.Call):
                    if _call_name(value.value.func) == "ReadWhiteboard":
                        snapshots.add(target.id)
                elif isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
                    if value.func.attr == "wb":
                        snapshots.add(target.id)

        def _is_snapshot(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name) and expr.id in snapshots:
                return True
            return (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "wb"
            )

        for node in nodes:  # second pass: mutations of those names
            bad: Optional[ast.AST] = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = node.targets if isinstance(node, (ast.Assign, ast.Delete)) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) and _is_snapshot(target.value):
                        bad = target
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATING_METHODS and _is_snapshot(node.func.value):
                    bad = node
            if bad is not None:
                findings.append(
                    mod.finding(
                        "RPR110",
                        bad,
                        "whiteboard snapshot mutated in place; changes are "
                        "invisible to other agents — yield `WriteWhiteboard` "
                        "or `UpdateWhiteboard` instead",
                    )
                )
    return findings


def _check_yields(mod: _Module) -> List[Finding]:
    """RPR120: behaviour generators must yield ``Action`` values."""
    findings: List[Finding] = []
    literal = (
        ast.Constant,
        ast.Tuple,
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.BinOp,
        ast.BoolOp,
        ast.Compare,
        ast.UnaryOp,
        ast.JoinedStr,
    )
    for func in mod.behaviours:
        for node in _own_yields(func):
            value = node.value
            if isinstance(node, ast.YieldFrom):
                if isinstance(value, literal):
                    findings.append(
                        mod.finding(
                            "RPR120",
                            node,
                            "`yield from` of a non-generator literal in a "
                            "behaviour; delegate to an action-yielding generator",
                        )
                    )
                continue
            non_action = (
                value is None
                or isinstance(value, literal)
                or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in _NON_ACTION_BUILTINS
                )
            )
            if non_action:
                what = "a bare `yield`" if value is None else "a non-`Action` value"
                findings.append(
                    mod.finding(
                        "RPR120",
                        node,
                        f"behaviour yields {what}; the engine only accepts "
                        "the `Action` vocabulary and raises `AgentError` on "
                        "anything else",
                    )
                )
    return findings


#: Package prefixes the observability layer must never import (the engine
#: imports ``repro.obs``; the reverse direction would be a cycle).
_OBS_FORBIDDEN_PREFIXES: Tuple[str, ...] = ("repro.sim", "repro.protocols")


def _is_obs_module(path: str) -> bool:
    """Whether ``path`` lies inside an ``obs`` package directory."""
    parts = Path(path).parts
    return "obs" in parts


def _check_obs_layering(mod: _Module) -> List[Finding]:
    """RPR200: ``repro.obs`` modules must not import the simulation layer.

    Applies only to files inside an ``obs`` package; both absolute imports
    (``import repro.sim.x`` / ``from repro.sim import y``) and relative
    imports that escape the package (``from ..sim import y``) are flagged.
    """
    if not _is_obs_module(mod.path):
        return []
    findings: List[Finding] = []

    def _forbidden(name: str) -> bool:
        return any(
            name == p or name.startswith(p + ".") for p in _OBS_FORBIDDEN_PREFIXES
        )

    def _flag(node: ast.AST, imported: str) -> None:
        findings.append(
            mod.finding(
                "RPR200",
                node,
                f"`repro.obs` imports `{imported}`: the engine imports the "
                "observability layer, so this is an import cycle — pass "
                "state through event payloads instead",
            )
        )

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _forbidden(alias.name):
                    _flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and _forbidden(module):
                _flag(node, module)
            elif node.level >= 2:  # `from ..sim import x` escapes repro/obs/
                target = module.split(".", 1)[0]
                if target in {"sim", "protocols"}:
                    _flag(node, f"{'.' * node.level}{module}")
    return findings


#: Package prefixes the executor layer must never import (the CLI imports
#: ``repro.exec``; the reverse direction would be a cycle — and workers
#: must stay renderer-free so their results remain JSON-able data).
_EXEC_FORBIDDEN_PREFIXES: Tuple[str, ...] = ("repro.cli", "repro.viz")


def _is_exec_module(path: str) -> bool:
    """Whether ``path`` lies inside an ``exec`` package directory."""
    return "exec" in Path(path).parts


def _check_exec_layering(mod: _Module) -> List[Finding]:
    """RPR210: ``repro.exec`` modules must not import the CLI/viz layers.

    Applies only to files inside an ``exec`` package; flags absolute
    imports and relative imports that escape the package (``from ..cli
    import main``, ``from ..viz import x``).
    """
    if not _is_exec_module(mod.path):
        return []
    findings: List[Finding] = []

    def _forbidden(name: str) -> bool:
        return any(
            name == p or name.startswith(p + ".") for p in _EXEC_FORBIDDEN_PREFIXES
        )

    def _flag(node: ast.AST, imported: str) -> None:
        findings.append(
            mod.finding(
                "RPR210",
                node,
                f"`repro.exec` imports `{imported}`: the CLI imports the "
                "executor, so this is an import cycle — return JSON-able "
                "values from tasks and let the frontend render them",
            )
        )

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _forbidden(alias.name):
                    _flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and _forbidden(module):
                _flag(node, module)
            elif node.level >= 2:  # `from ..cli import x` escapes repro/exec/
                target = module.split(".", 1)[0]
                if target in {"cli", "viz"}:
                    _flag(node, f"{'.' * node.level}{module}")
    return findings


#: Package prefixes the fast path must never import (analysis/exec/CLI all
#: consume ``repro.fastpath``; the sim/protocol planes are heavyweight and
#: the compiled form must stay loadable without them).
_FASTPATH_FORBIDDEN_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.protocols",
    "repro.analysis",
    "repro.exec",
    "repro.cli",
    "repro.viz",
    "repro.obs",
)

_FASTPATH_FORBIDDEN_TOPS: FrozenSet[str] = frozenset(
    p.split(".", 1)[1] for p in _FASTPATH_FORBIDDEN_PREFIXES
)


def _is_fastpath_module(path: str) -> bool:
    """Whether ``path`` lies inside a ``fastpath`` package directory."""
    return "fastpath" in Path(path).parts


def _check_fastpath_layering(mod: _Module) -> List[Finding]:
    """RPR220: ``repro.fastpath`` imports only core/topology/errors.

    Applies only to files inside a ``fastpath`` package; flags absolute
    imports of any consumer or simulation layer and relative imports
    that escape the package toward one (``from ..analysis import x``).
    """
    if not _is_fastpath_module(mod.path):
        return []
    findings: List[Finding] = []

    def _forbidden(name: str) -> bool:
        return any(
            name == p or name.startswith(p + ".")
            for p in _FASTPATH_FORBIDDEN_PREFIXES
        )

    def _flag(node: ast.AST, imported: str) -> None:
        findings.append(
            mod.finding(
                "RPR220",
                node,
                f"`repro.fastpath` imports `{imported}`: the fast path sits "
                "below the analysis/exec/CLI planes and must stay importable "
                "without them — only `repro.core`, `repro.topology` and "
                "`repro.errors` are allowed",
            )
        )

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _forbidden(alias.name):
                    _flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and _forbidden(module):
                _flag(node, module)
            elif node.level >= 2:  # `from ..sim import x` escapes repro/fastpath/
                target = module.split(".", 1)[0]
                if target in _FASTPATH_FORBIDDEN_TOPS:
                    _flag(node, f"{'.' * node.level}{module}")
    return findings


def _check_numpy_confinement(mod: _Module) -> List[Finding]:
    """RPR250: ``numpy`` imports live only in ``fastpath/npkernels.py``.

    The kernel-backend seam (``resolve_backend``,
    ``$REPRO_KERNEL_BACKEND``) is the single place the optional
    accelerated path is selected and degraded to pure Python; any other
    module importing ``numpy`` directly bypasses that fallback and
    couples itself to an optional dependency.  The one sanctioned home
    is a file named ``npkernels.py`` inside a ``fastpath`` package.
    """
    p = Path(mod.path)
    if p.name == "npkernels.py" and _is_fastpath_module(mod.path):
        return []
    findings: List[Finding] = []

    def _flag(node: ast.AST, imported: str) -> None:
        findings.append(
            mod.finding(
                "RPR250",
                node,
                f"`{imported}` imported outside `fastpath/npkernels.py`: "
                "go through the kernel-backend seam "
                "(`repro.fastpath.npkernels`, `resolve_backend`) so the "
                "pure fallback and `$REPRO_KERNEL_BACKEND` selection "
                "keep working",
            )
        )

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    _flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (
                module == "numpy" or module.startswith("numpy.")
            ):
                _flag(node, module)
    return findings


#: Package prefixes the tracing plane must never import (every runtime
#: layer reports *into* tracing via injected handles — `bind_tracer`,
#: `set_active_tracer` — so importing one back would be a cycle and
#: would drag heavyweight planes into every RunLog reader).
_TRACE_FORBIDDEN_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.protocols",
    "repro.exec",
    "repro.fastpath",
    "repro.analysis",
    "repro.cli",
    "repro.viz",
)

_TRACE_FORBIDDEN_TOPS: FrozenSet[str] = frozenset(
    p.split(".", 1)[1] for p in _TRACE_FORBIDDEN_PREFIXES
)

#: Module stems inside ``obs`` that form the tracing/trajectory plane.
_TRACE_STEMS: FrozenSet[str] = frozenset({"trace", "runlog", "prom"})


def _is_trace_module(path: str) -> bool:
    """Whether ``path`` is a tracing-plane module (``obs/{trace,runlog,prom}``)."""
    p = Path(path)
    return "obs" in p.parts and p.stem in _TRACE_STEMS


def _check_trace_layering(mod: _Module) -> List[Finding]:
    """RPR230: tracing modules must not import runtime/frontend layers.

    Applies only to the tracing-plane modules inside an ``obs`` package
    (``trace``, ``runlog``, ``prom``); flags absolute imports of any
    instrumented or frontend layer and relative imports that escape the
    package toward one (``from ..exec import x``).  Stricter than RPR200
    because these modules are also *read-side* tools (``repro-search
    trace`` parses RunLogs) and must stay loadable standalone.
    """
    if not _is_trace_module(mod.path):
        return []
    findings: List[Finding] = []

    def _forbidden(name: str) -> bool:
        return any(
            name == p or name.startswith(p + ".") for p in _TRACE_FORBIDDEN_PREFIXES
        )

    def _flag(node: ast.AST, imported: str) -> None:
        findings.append(
            mod.finding(
                "RPR230",
                node,
                f"tracing module imports `{imported}`: every runtime layer "
                "reports into tracing through injected handles "
                "(`bind_tracer`, `set_active_tracer`), so this is an "
                "import cycle — keep trace/runlog/prom layering-terminal",
            )
        )

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _forbidden(alias.name):
                    _flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and _forbidden(module):
                _flag(node, module)
            elif node.level >= 2:  # `from ..exec import x` escapes repro/obs/
                target = module.split(".", 1)[0]
                if target in _TRACE_FORBIDDEN_TOPS:
                    _flag(node, f"{'.' * node.level}{module}")
    return findings


def _check_memory(mod: _Module) -> List[Finding]:
    """RPR130: agent memory writes must go through ``remember``."""
    findings: List[Finding] = []

    def _is_foreign_memory(expr: ast.expr) -> bool:
        """``<obj>.memory`` for any object except ``self`` (the accounted
        implementation inside :class:`AgentContext` itself)."""
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == "memory"
            and not (isinstance(expr.value, ast.Name) and expr.value.id == "self")
        )

    message = (
        "direct agent-memory write bypasses `AgentContext.remember` and "
        "its `O(log n)`-bit accounting (`estimate_bits`)"
    )
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, (ast.Assign, ast.Delete)) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_foreign_memory(target.value):
                    findings.append(mod.finding("RPR130", target, message))
                elif (
                    isinstance(target, ast.Attribute)
                    and target.attr in {"memory", "peak_memory_bits"}
                    and not (isinstance(target.value, ast.Name) and target.value.id == "self")
                ):
                    findings.append(
                        mod.finding(
                            "RPR130",
                            target,
                            f"rebinding `{ast.unparse(target)}` defeats the "
                            "agent-memory bit accounting",
                        )
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS and _is_foreign_memory(node.func.value):
                findings.append(mod.finding("RPR130", node, message))
    return findings


# --------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------- #


def _sort(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.code))


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` if ``node`` is ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _looks_like_strategy(cls: ast.ClassDef, methods: Dict[str, _AnyFunction]) -> bool:
    """Whether ``cls`` participates in the schedule-cache contract.

    Heuristic on purpose: a base named ``*Strategy``, a ``register``
    decorator, or an own ``cache_params`` override all mark the class as
    fingerprinted by the cache; a random class that merely has a
    ``generate`` method is not.
    """
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name and "Strategy" in name:
            return True
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if _call_name(target) == "register":
            return True
    return "cache_params" in methods


def _check_cache_params(mod: _Module) -> List[Finding]:
    """RPR240: generation-steering constructor knobs must be in
    ``cache_params``.

    The schedule cache fingerprints ``(strategy name, version tag,
    dimension, cache_params())`` — nothing else.  A constructor
    parameter stored on ``self`` and read anywhere in the generation
    closure (``generate``/``generate_chunks``/``stream_moves``/
    ``expected_team_size`` plus every helper method they reach through
    ``self.<m>()``) steers the
    schedule bytes, so leaving it out of ``cache_params`` makes two
    differently-configured instances address the same entry: whichever
    runs second is served the first one's schedule.  Knobs assigned from
    constants (internal state, memo slots) are not configuration and do
    not count.
    """
    findings: List[Finding] = []
    for cls in (n for n in ast.walk(mod.tree) if isinstance(n, ast.ClassDef)):
        methods: Dict[str, _AnyFunction] = {
            m.name: m for m in cls.body if isinstance(m, _FunctionNode)
        }
        roots = [
            name
            for name in ("generate", "stream_moves", "generate_chunks", "expected_team_size")
            if name in methods
        ]
        init = methods.get("__init__")
        if not roots or init is None or not _looks_like_strategy(cls, methods):
            continue
        args = init.args
        params = {
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        } - {"self"}
        for star in (args.vararg, args.kwarg):
            if star is not None:
                params.add(star.arg)
        # knobs: ``self.X = <expr mentioning an __init__ parameter>``
        knobs: Dict[str, ast.AST] = {}
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [node.target], node.value
            else:
                continue
            if value is None or not any(
                isinstance(sub, ast.Name) and sub.id in params
                for sub in ast.walk(value)
            ):
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    knobs.setdefault(attr, node)
        if not knobs:
            continue
        # the generation closure: methods reachable from the roots
        reached: Set[str] = set()
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            if name in reached or name not in methods:
                continue
            reached.add(name)
            for node in ast.walk(methods[name]):
                if isinstance(node, ast.Call):
                    callee = _self_attr(node.func)
                    if callee is not None:
                        frontier.append(callee)
        read: Set[str] = set()
        for name in reached:
            for node in ast.walk(methods[name]):
                attr = _self_attr(node)
                if attr is not None and isinstance(node.ctx, ast.Load):
                    read.add(attr)
        hot = sorted(attr for attr in knobs if attr in read)
        if not hot:
            continue
        covered: Set[str] = set()
        cache_params = methods.get("cache_params")
        if cache_params is not None:
            for node in ast.walk(cache_params):
                attr = _self_attr(node)
                if attr is not None:
                    covered.add(attr)
                elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                    covered.add(node.value)
        for attr in hot:
            if {attr, attr.lstrip("_")} & covered:
                continue
            findings.append(
                mod.finding(
                    "RPR240",
                    knobs[attr],
                    f"constructor knob `self.{attr}` steers `{cls.name}` "
                    "generation but `cache_params()` omits it — two "
                    "differently-configured instances share one cache "
                    "fingerprint, so one is served the other's stale "
                    "schedule",
                )
            )
    return findings


def _per_file_findings(mod: _Module) -> List[Finding]:
    """Every single-module rule (RPR100–RPR250, RPR340/RPR350)."""
    return (
        _check_model(mod)
        + _check_board_mutation(mod)
        + _check_yields(mod)
        + _check_memory(mod)
        + _check_cache_params(mod)
        + _check_obs_layering(mod)
        + _check_exec_layering(mod)
        + _check_fastpath_layering(mod)
        + _check_numpy_confinement(mod)
        + _check_trace_layering(mod)
        + check_concurrency(mod.tree, mod.path)
    )


def _analyze_module(
    source: str, path: str
) -> Tuple[List[Finding], SuppressionTable, Set[int], ast.AST]:
    """One module's per-file pass: suppressed findings stay out, and the
    suppression table travels with the result so the whole-program pass
    (and the unused-suppression report) can consult it."""
    mod = _Module(source, path)
    table = SuppressionTable.from_source(source)
    findings, used = apply_suppressions(_sort(_per_file_findings(mod)), table, path)
    return findings, table, used, mod.tree


def analyze_source(source: str, path: str = "<string>") -> List[Finding]:
    """Analyze one module given as source text; returns sorted findings.

    Runs the per-file rules plus the whole-program passes restricted to
    this single module (a ``Strategy`` defined here with a reachable
    hazard is still reported), honours inline suppressions, and reports
    unused ones (RPR010).
    """
    findings, table, used, tree = _analyze_module(source, path)
    project = check_determinism(build_program_graph({path: tree}))
    project += check_schema_drift({path: tree})
    kept, project_used = apply_suppressions(_sort(project), table, path)
    findings = findings + kept
    findings += unused_suppression_findings(table, used | project_used, path)
    return _sort(findings)


def analyze_path(path: Path) -> List[Finding]:
    """Analyze one ``.py`` file."""
    return analyze_source(path.read_text(), str(path))


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and/or directories into ``.py`` files (recursively)."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def parse_trees(paths: Sequence[Path]) -> Dict[str, ast.AST]:
    """``{path: parsed tree}`` for every readable, parseable file."""
    trees: Dict[str, ast.AST] = {}
    for file in collect_files(paths):
        try:
            trees[str(file)] = ast.parse(file.read_text(), filename=str(file))
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue
    return trees


def analyze_paths(paths: Sequence[Path]) -> List[Finding]:
    """Analyze files/directories: per-file rules plus the whole-program
    determinism and schema passes over the combined module set."""
    return run_analysis(paths).findings


@dataclass
class LintRun:
    """One full analysis: findings plus the accounting the CLI reports."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    files_analyzed: int = 0
    files_cached: int = 0
    baselined: int = 0
    tree_cache_hit: bool = False
    #: ``(path, message)`` per unreadable/unparseable input — exit code 2
    errors: List[Tuple[str, str]] = field(default_factory=list)


def run_analysis(
    paths: Sequence[Path],
    *,
    cache: Optional[LintCache] = None,
    baseline_path: Optional[Path] = None,
    schema_baseline: Optional[Path] = None,
) -> LintRun:
    """The full driver behind the CLI: incremental cache, suppressions,
    whole-program passes, findings baseline.

    Per-file results are served from ``cache`` by content hash; the
    whole-program pass is served by the hash of the entire file set, so
    a warm run over an unchanged tree parses nothing at all.
    """
    run = LintRun()
    files = collect_files(paths)
    run.files_scanned = len(files)

    contents: Dict[str, bytes] = {}
    for file in files:
        try:
            contents[str(file)] = file.read_bytes()
        except OSError as exc:
            run.errors.append((str(file), f"cannot read: {exc}"))

    hashes = {path: content_hash(data) for path, data in contents.items()}
    per_file: Dict[str, Tuple[List[Finding], SuppressionTable, Set[int]]] = {}
    trees: Dict[str, ast.AST] = {}
    for path, data in contents.items():
        key = hashes[path]
        if cache is not None:
            hit = cache.load_file(key, path)
            if hit is not None:
                findings, table, used = hit
                per_file[path] = (findings, table, set(used))
                run.files_cached += 1
                continue
        try:
            source = data.decode("utf-8")
            findings, table, used, tree = _analyze_module(source, path)
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            message = getattr(exc, "msg", None) or str(exc)
            lineno = getattr(exc, "lineno", None)
            where = f"line {lineno}: " if lineno else ""
            run.errors.append((path, f"cannot parse: {where}{message}"))
            continue
        run.files_analyzed += 1
        per_file[path] = (findings, table, used)
        trees[path] = tree
        if cache is not None:
            cache.store_file(key, findings, table, sorted(used))

    # ---- whole-program passes (determinism walk + schema drift) ------- #
    canonical = {path: canonical_path(path) for path in per_file}
    tree_key = tree_hash([(canonical[p], hashes[p]) for p in per_file])
    project_findings: List[Finding] = []
    project_used: Dict[str, Set[int]] = {}
    served = None
    if cache is not None:
        reverse = {canon: path for path, canon in canonical.items()}
        served = cache.load_tree(tree_key, reverse)
    if served is not None:
        project_findings, used_by_canon = served
        run.tree_cache_hit = True
        reverse = {canon: path for path, canon in canonical.items()}
        for canon, lines in used_by_canon.items():
            project_used[reverse.get(canon, canon)] = set(lines)
    else:
        for path in per_file:
            if path not in trees:  # per-file cache hit: parse for the graph
                try:
                    trees[path] = ast.parse(contents[path].decode("utf-8"), filename=path)
                except (SyntaxError, UnicodeDecodeError, ValueError):  # pragma: no cover
                    continue  # cached as parseable; racing edit — skip
        graph_trees = {path: tree for path, tree in trees.items() if path in per_file}
        raw = check_determinism(build_program_graph(graph_trees))
        raw += check_schema_drift(graph_trees, schema_baseline)
        for finding in _sort(raw):
            entry = per_file.get(finding.path)
            table = entry[1] if entry else SuppressionTable({})
            kept, used = apply_suppressions([finding], table, finding.path)
            project_findings.extend(kept)
            if used:
                project_used.setdefault(finding.path, set()).update(used)
        if cache is not None:
            cache.store_tree(
                tree_key,
                project_findings,
                {p: sorted(lines) for p, lines in project_used.items()},
                canonical,
            )

    # ---- merge, unused suppressions, baseline ------------------------- #
    findings: List[Finding] = []
    for path, (file_findings, table, used) in per_file.items():
        findings.extend(file_findings)
        findings.extend(
            unused_suppression_findings(
                table, used | project_used.get(path, set()), path
            )
        )
    findings.extend(project_findings)

    if baseline_path is not None:
        entries = load_baseline(baseline_path)
        findings, run.baselined = apply_baseline(findings, entries, baseline_path)

    run.findings = _sort(findings)
    return run
