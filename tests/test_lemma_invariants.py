"""The paper's proof-internal lemmas, instrumented during replay.

Beyond the end-state verdicts (clean? monotone?), these tests check the
*intermediate* statements the correctness proofs assert — Lemma 2 for
Algorithm CLEAN, the Theorem 7 induction for the visibility strategy — at
the exact moments the proofs talk about.
"""

import pytest

from repro.core.schedule import MoveKind
from repro.core.states import AgentRole, NodeState
from repro.core.strategy import get_strategy
from repro.sim.contamination import ContaminationMap
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube


def replay_with_probe(schedule, probe):
    """Replay a schedule, calling ``probe(cmap, move)`` after each move."""
    h = Hypercube(schedule.dimension)
    cmap = ContaminationMap(h, strict=True)
    for _ in range(schedule.team_size):
        cmap.place_agent(0)
    for move in schedule.moves:
        cmap.move_agent(move.src, move.dst)
        probe(cmap, move)
    return cmap


class TestLemma2Clean:
    """Lemma 2: while the synchronizer works at node y of level l,

    * after y's children are escorted, each is guarded;
    * when y is vacated, every neighbour of y is clean or guarded;
    * when a leaf's agent is released, its level-(l+1) neighbours are
      guarded and its level-(l-1) neighbours are clean.
    """

    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_departures_leave_safe_neighbourhoods(self, d):
        schedule = get_strategy("clean").run(d)
        h = Hypercube(d)

        def probe(cmap, move):
            # whenever any node has just been vacated, Lemma 2 promises its
            # whole neighbourhood is safe; strict=True would have raised on
            # violation, but check the exact statement explicitly:
            if cmap.guards(move.src) == 0:
                for y in h.neighbors(move.src):
                    assert cmap.state(y) is not NodeState.CONTAMINATED, (
                        move.src,
                        y,
                    )

        replay_with_probe(schedule, probe)

    @pytest.mark.parametrize("d", [3, 4])
    def test_leaf_release_preconditions(self, d):
        """At the completion of a RETURN's first move (the leaf being
        vacated), upper neighbours are guarded and lower ones clean."""
        schedule = get_strategy("clean").run(d)
        h = Hypercube(d)
        tree = BroadcastTree(h)
        leaves = set(tree.leaves())
        first_return_seen = set()

        def probe(cmap, move):
            if (
                move.kind is MoveKind.RETURN
                and move.src in leaves
                and move.src not in first_return_seen
            ):
                first_return_seen.add(move.src)
                level = h.level(move.src)
                for y in h.neighbors(move.src):
                    if h.level(y) == level + 1:
                        assert cmap.state(y) is NodeState.GUARDED
                    elif h.level(y) == level - 1:
                        assert cmap.state(y) in (NodeState.CLEAN, NodeState.GUARDED)

        replay_with_probe(schedule, probe)
        assert first_return_seen  # the probe actually fired

    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_escort_guards_child_immediately(self, d):
        """Each broadcast-tree child is guarded the moment its deploying
        agent arrives (step 2.2's invariant)."""
        schedule = get_strategy("clean").run(d)

        def probe(cmap, move):
            if move.kind is MoveKind.DEPLOY and move.role is AgentRole.AGENT:
                assert cmap.guards(move.dst) >= 1

        replay_with_probe(schedule, probe)


class TestTheorem7Induction:
    """At time i, all of C_i is clean and only C_{i+1}'s agents may move."""

    @pytest.mark.parametrize("d", [3, 4, 5, 6])
    def test_wave_i_cleans_class_i(self, d):
        schedule = get_strategy("visibility").run(d)
        h = Hypercube(d)
        tree = BroadcastTree(h)
        state_at_wave_end = {}

        h_probe = Hypercube(d)
        cmap = ContaminationMap(h_probe, strict=True)
        for _ in range(schedule.team_size):
            cmap.place_agent(0)
        for time, group in schedule.by_time():
            for move in group:
                cmap.move_agent(move.src, move.dst)
            state_at_wave_end[time] = cmap.snapshot()

        for wave in range(1, d + 1):
            snapshot = state_at_wave_end[wave]
            # classes up to wave-1 are clean (their agents left)
            for i in range(wave):
                for x in h.class_members(i):
                    if not tree.is_leaf(x):
                        assert snapshot[x] is NodeState.CLEAN, (wave, i, x)
            # classes above the wave are guarded or still contaminated,
            # never clean (their agents have not moved yet)
            for i in range(wave + 1, d + 1):
                for x in h.class_members(i):
                    assert snapshot[x] is not NodeState.CLEAN, (wave, i, x)

    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_only_one_class_moves_per_wave(self, d):
        schedule = get_strategy("visibility").run(d)
        h = Hypercube(d)
        for time, group in schedule.by_time():
            sources = {h.class_index(m.src) for m in group}
            assert sources == {time - 1}
