"""Tests for the multi-walker intruder pack."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.contamination import ContaminationMap
from repro.sim.engine import Engine
from repro.sim.intruder import MultiWalkerIntruder
from repro.topology.hypercube import Hypercube


def fresh_map(d=3):
    cmap = ContaminationMap(Hypercube(d), strict=False)
    cmap.place_agent(0)
    return cmap


class TestMultiWalker:
    def test_distinct_starts_when_possible(self):
        cmap = fresh_map(3)
        pack = MultiWalkerIntruder(cmap, count=3, rng=random.Random(1))
        starts = [w.position for w in pack.walkers]
        assert len(set(starts)) == 3
        assert all(cmap.guards(s) == 0 for s in starts)

    def test_more_walkers_than_hideouts(self):
        cmap = ContaminationMap(Hypercube(1), strict=False)
        cmap.place_agent(0)
        pack = MultiWalkerIntruder(cmap, count=4, rng=random.Random(0))
        assert len(pack.walkers) == 4
        assert all(w.position == 1 for w in pack.walkers)

    def test_needs_walkers_and_contamination(self):
        cmap = fresh_map(3)
        with pytest.raises(SimulationError):
            MultiWalkerIntruder(cmap, count=0)
        clean = ContaminationMap(Hypercube(0), strict=False)
        clean.place_agent(0)
        with pytest.raises(SimulationError):
            MultiWalkerIntruder(clean, count=1)

    def test_captured_only_when_all_are(self):
        from repro.core.strategy import get_strategy

        cmap = fresh_map(3)
        for _ in range(3):
            cmap.place_agent(0)
        pack = MultiWalkerIntruder(cmap, count=2, rng=random.Random(2))
        schedule = get_strategy("visibility").run(3)
        seen_partial = False
        for move in schedule.moves:
            cmap.move_agent(move.src, move.dst)
            pack.observe(cmap)
            captured = [w.captured for w in pack.walkers]
            if any(captured) and not all(captured):
                seen_partial = True
                assert not pack.captured
        assert pack.captured
        assert pack.positions == []
        # (seen_partial may or may not occur depending on flight paths)

    def test_engine_integration(self):
        from repro.analysis.formulas import visibility_agents
        from repro.protocols.visibility_protocol import visibility_agent

        d = 4
        engine = Engine(
            Hypercube(d),
            [visibility_agent] * visibility_agents(d),
            visibility=True,
            intruder="walkers",
            intruder_count=3,
            intruder_seed=9,
        )
        result = engine.run()
        assert result.ok
        assert engine.intruder.captured
        assert len(engine.intruder.walkers) == 3

    def test_cli_unknown_count_kind(self):
        with pytest.raises(SimulationError):
            Engine(Hypercube(2), [lambda ctx: iter(())], intruder="swarm")


class TestDeterminism:
    """Regression for the float-derived sub-walker seeds: packs must be
    reproducible per seed (getrandbits(64), not random())."""

    @staticmethod
    def run_pack(seed):
        from repro.analysis.formulas import visibility_agents
        from repro.protocols.visibility_protocol import visibility_agent

        d = 4
        engine = Engine(
            Hypercube(d),
            [visibility_agent] * visibility_agents(d),
            visibility=True,
            intruder="walkers",
            intruder_count=3,
            intruder_seed=seed,
        )
        result = engine.run()
        assert result.ok
        return [tuple(w.trajectory) for w in engine.intruder.walkers]

    def test_same_seed_identical_traces_twice(self):
        first = self.run_pack(7)
        second = self.run_pack(7)
        third = self.run_pack(7)
        assert first == second == third

    def test_distinct_seeds_distinct_substreams(self):
        # two fresh packs from the same parent RNG must not hand identical
        # RNG streams to their sub-walkers (the float-seed collision mode)
        cmap = ContaminationMap(Hypercube(3), strict=False)
        cmap.place_agent(0)
        pack = MultiWalkerIntruder(cmap, count=2, rng=random.Random(5))
        streams = [w._rng.getrandbits(64) for w in pack.walkers]
        assert streams[0] != streams[1]
