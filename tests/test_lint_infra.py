"""Tests for the lint infrastructure: suppressions, baselines, the
incremental cache, SARIF output, and the CLI exit-code contract.

The two waiver mechanisms are ratchets — unused suppressions (RPR010)
and stale baseline entries (RPR011) are themselves findings — and the
cache must be invisible: a warm run returns byte-identical findings
while analyzing zero files.
"""

import json
from pathlib import Path

from repro.lint import (
    LintCache,
    analyze_source,
    run_analysis,
    sarif_payload,
    write_baseline,
)
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.cli import build_parser
from repro.lint.cli import main as lint_main
from repro.lint.rules import RULES, Finding
from repro.lint.suppressions import SuppressionTable

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

VIOLATING_OBS = "import repro.sim.engine\n"


class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self):
        src = "import repro.sim.engine  # repro-lint: disable=RPR200\n"
        assert analyze_source(src, "src/repro/obs/mod.py") == []

    def test_comment_only_line_covers_next_code_line(self):
        src = (
            "# repro-lint: disable=RPR200\n"
            "import repro.sim.engine\n"
        )
        assert analyze_source(src, "src/repro/obs/mod.py") == []

    def test_disable_all(self):
        src = "import repro.sim.engine  # repro-lint: disable=all\n"
        assert analyze_source(src, "src/repro/obs/mod.py") == []

    def test_other_code_does_not_suppress(self):
        src = "import repro.sim.engine  # repro-lint: disable=RPR210\n"
        codes = [f.code for f in analyze_source(src, "src/repro/obs/mod.py")]
        # the RPR200 finding survives AND the directive is reported unused
        assert codes == ["RPR010", "RPR200"]

    def test_multiple_codes_one_directive(self):
        src = (
            "import repro.sim.engine  # repro-lint: disable=RPR200,RPR210\n"
        )
        assert analyze_source(src, "src/repro/obs/mod.py") == []

    def test_unused_suppression_reports_directive_line(self):
        src = "X = 1\n\n# repro-lint: disable=RPR330\nY = 2\n"
        findings = analyze_source(src, "mod.py")
        assert [(f.code, f.line) for f in findings] == [("RPR010", 3)]

    def test_table_parses_anchors(self):
        table = SuppressionTable.from_source(
            "# repro-lint: disable=RPR100\n\ndef agent(ctx):\n    pass\n"
        )
        assert table.covers(3, "RPR100")
        assert table.directive_line(3) == 1


class TestBaseline:
    def _finding(self, line=5):
        return Finding(
            code="RPR200",
            path="src/repro/obs/mod.py",
            line=line,
            column=1,
            message="obs imports sim",
        )

    def test_round_trip_absorbs_matching_findings(self, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline([self._finding()], baseline)
        kept, absorbed = apply_baseline(
            [self._finding()], load_baseline(baseline), baseline
        )
        assert kept == [] and absorbed == 1

    def test_matching_ignores_line_numbers(self, tmp_path):
        # unrelated edits move lines; the baseline must not churn
        baseline = tmp_path / "base.json"
        write_baseline([self._finding(line=5)], baseline)
        kept, absorbed = apply_baseline(
            [self._finding(line=99)], load_baseline(baseline), baseline
        )
        assert kept == [] and absorbed == 1

    def test_extra_instance_of_old_problem_is_reported(self, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline([self._finding()], baseline)
        kept, absorbed = apply_baseline(
            [self._finding(line=5), self._finding(line=9)],
            load_baseline(baseline),
            baseline,
        )
        assert absorbed == 1
        assert [f.code for f in kept] == ["RPR200"]

    def test_stale_entry_becomes_rpr011(self, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline([self._finding()], baseline)
        kept, absorbed = apply_baseline([], load_baseline(baseline), baseline)
        assert absorbed == 0
        assert [f.code for f in kept] == ["RPR011"]
        assert kept[0].path == str(baseline)

    def test_missing_baseline_loads_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}


class TestSarif:
    def _payload(self):
        findings = analyze_source(VIOLATING_OBS, "src/repro/obs/mod.py")
        return sarif_payload(findings, files_scanned=1)

    def test_log_shape(self):
        payload = self._payload()
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert [r["ruleId"] for r in run["results"]] == ["RPR200"]

    def test_registry_ships_every_rule(self):
        (run,) = self._payload()["runs"]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(RULES)

    def test_locations_are_repo_relative(self):
        (run,) = self._payload()["runs"]
        loc = run["results"][0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/obs/mod.py"
        assert loc["region"]["startLine"] == 1

    def test_advisory_codes_are_warnings(self):
        (run,) = self._payload()["runs"]
        levels = {r["id"]: r["defaultConfiguration"]["level"] for r in run["tool"]["driver"]["rules"]}
        assert levels["RPR010"] == "warning"
        assert levels["RPR011"] == "warning"
        assert levels["RPR300"] == "error"

    def test_round_trips_through_json(self):
        payload = self._payload()
        assert json.loads(json.dumps(payload)) == payload


class TestIncrementalCache:
    def _tree(self, tmp_path):
        root = tmp_path / "proj"
        (root / "obs").mkdir(parents=True)
        (root / "obs" / "bad.py").write_text(VIOLATING_OBS)
        (root / "clean.py").write_text("X = 1\n")
        return root

    def test_warm_run_analyzes_nothing_with_identical_findings(self, tmp_path):
        root = self._tree(tmp_path)
        cache = LintCache(tmp_path / "cache")
        cold = run_analysis([root], cache=cache)
        warm = run_analysis([root], cache=LintCache(tmp_path / "cache"))
        assert cold.files_analyzed == 2 and cold.files_cached == 0
        assert warm.files_analyzed == 0 and warm.files_cached == 2
        assert warm.tree_cache_hit
        assert [
            (f.code, f.path, f.line, f.column, f.message) for f in warm.findings
        ] == [(f.code, f.path, f.line, f.column, f.message) for f in cold.findings]

    def test_editing_one_file_reanalyzes_only_it(self, tmp_path):
        root = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        run_analysis([root], cache=LintCache(cache_dir))
        (root / "clean.py").write_text("X = 2\n")
        warm = run_analysis([root], cache=LintCache(cache_dir))
        assert warm.files_analyzed == 1 and warm.files_cached == 1
        assert not warm.tree_cache_hit  # the tree changed with the file

    def test_corrupt_cache_entry_degrades_to_miss(self, tmp_path):
        root = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        run_analysis([root], cache=LintCache(cache_dir))
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        rerun = run_analysis([root], cache=LintCache(cache_dir))
        assert rerun.files_analyzed == 2
        assert [f.code for f in rerun.findings] == ["RPR200"]

    def test_unreadable_input_is_an_error_not_a_crash(self, tmp_path):
        root = self._tree(tmp_path)
        (root / "broken.py").write_text("def broken(:\n")
        run = run_analysis([root])
        assert len(run.errors) == 1
        assert "broken.py" in run.errors[0][0]
        assert [f.code for f in run.findings] == ["RPR200"]


class TestExitCodes:
    def test_clean_exits_zero(self, tmp_path, capsys):
        mod = tmp_path / "ok.py"
        mod.write_text("X = 1\n")
        assert lint_main([str(mod)]) == 0

    def test_findings_exit_one(self, capsys):
        assert lint_main([str(FIXTURES / "viol_rpr100.py")]) == 1

    def test_analysis_error_exits_two_even_with_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "viol.py").write_text(
            (FIXTURES / "viol_rpr100.py").read_text()
        )
        assert lint_main([str(tmp_path)]) == 2
        captured = capsys.readouterr()
        assert "cannot parse" in captured.err
        assert "RPR100" in captured.out  # findings still reported

    def test_write_baseline_then_rerun_is_clean(self, tmp_path, capsys):
        viol = tmp_path / "obs" / "bad.py"
        viol.parent.mkdir()
        viol.write_text(VIOLATING_OBS)
        baseline = tmp_path / "base.json"
        assert lint_main(
            ["--write-baseline", "--baseline", str(baseline), "--no-cache", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert lint_main(
            ["--baseline", str(baseline), "--no-cache", str(tmp_path)]
        ) == 0
        assert "baselined" in capsys.readouterr().out


class TestParserParity:
    def test_repro_search_lint_accepts_the_same_flags(self):
        from repro.cli import build_parser as search_parser

        lint_options = {
            opt for a in build_parser()._actions for opt in a.option_strings
        }
        sub = next(
            a for a in search_parser()._actions
            if hasattr(a, "choices") and a.choices and "lint" in a.choices
        )
        search_options = {
            opt for a in sub.choices["lint"]._actions for opt in a.option_strings
        }
        assert lint_options == search_options

    def test_repro_search_lint_mirrors_exit_codes(self, capsys):
        from repro.cli import main as search_main

        assert search_main(["lint", str(FIXTURES / "viol_rpr100.py")]) == 1
        capsys.readouterr()
        assert search_main(["lint", "no/such/path.py"]) == 2
