"""Tests for the deployment-profile chart rendering."""

from repro.core.strategy import get_strategy
from repro.viz.profile_render import render_deployment_profile


class TestProfileRender:
    def test_visibility_flat_top(self):
        text = render_deployment_profile(get_strategy("visibility").run(4), width=20)
        lines = text.splitlines()
        assert "peak 8" in lines[0]
        assert lines[1].endswith(" 0")  # t=0 row
        # all post-wave rows at peak
        assert all(line.endswith(" 8") for line in lines[2:])

    def test_clean_sawtooth_comes_down(self):
        text = render_deployment_profile(get_strategy("clean").run(4), width=20)
        last = text.splitlines()[-1]
        value = int(last.rsplit(" ", 1)[1])
        assert value <= 2  # everyone's home except the tail

    def test_downsampling_preserves_peak(self):
        schedule = get_strategy("clean").run(6)
        full = render_deployment_profile(schedule, max_rows=10_000)
        sampled = render_deployment_profile(schedule, max_rows=10)
        assert "downsampled" in sampled

        def peak_of(text):
            return int(text.splitlines()[0].split("(peak ")[1].split(",")[0])

        assert peak_of(full) == peak_of(sampled)
        assert len(sampled.splitlines()) <= 12

    def test_bar_widths_scale(self):
        text = render_deployment_profile(get_strategy("visibility").run(3), width=10)
        peak_rows = [l for l in text.splitlines()[1:] if l.endswith(" 4")]
        assert all(l.count("#") == 10 for l in peak_rows)

    def test_empty_schedule(self):
        from repro.core.schedule import Schedule

        text = render_deployment_profile(
            Schedule(dimension=0, strategy="noop", team_size=1)
        )
        assert "peak 0" in text or "peak" in text
