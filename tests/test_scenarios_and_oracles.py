"""Scenario builders + networkx-oracle cross-checks of the dynamics."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import ScheduleVerifier
from repro.errors import TopologyError
from repro.protocols.frontier_protocol import run_frontier_protocol
from repro.search.frontier_sweep import frontier_sweep_schedule
from repro.sim.contamination import ContaminationMap
from repro.sim.quarantine import quarantine_and_clean
from repro.sim.scenarios import campus_network, datacenter_fabric, enterprise_network

from .conftest import connected_graphs


class TestScenarioBuilders:
    def test_enterprise_shape(self):
        g = enterprise_network()
        assert g.n == 16
        assert g.is_connected()

    def test_datacenter_shape(self):
        g = datacenter_fabric(spines=2, leaves=4, hosts_per_leaf=2)
        assert g.n == 2 + 4 + 8
        # leaves see every spine
        for leaf in range(2, 6):
            assert set(g.neighbors(leaf)) >= {0, 1}

    def test_campus_bridges_are_narrow(self):
        from repro.search.frontier_sweep import bfs_boundary_width

        small = bfs_boundary_width(campus_network(clusters=2, cluster_size=4))
        large = bfs_boundary_width(campus_network(clusters=6, cluster_size=4))
        assert large <= small + 1  # boundary does not grow with campus length

    @pytest.mark.parametrize(
        "builder", [enterprise_network, datacenter_fabric, campus_network]
    )
    def test_all_cleanable(self, builder):
        g = builder()
        schedule = frontier_sweep_schedule(g)
        assert ScheduleVerifier(g).verify(schedule).ok
        result = run_frontier_protocol(g)
        assert result.ok, (g.name, result.summary())

    def test_quarantine_a_department(self):
        g = enterprise_network()
        infected = {4, 5, 6, 0}  # department 0 and its router
        report = quarantine_and_clean(g, infected)
        assert report.ok

    def test_parameter_guards(self):
        with pytest.raises(TopologyError):
            enterprise_network(routers=2)
        with pytest.raises(TopologyError):
            datacenter_fabric(spines=0)
        with pytest.raises(TopologyError):
            campus_network(cluster_size=1)


class TestNetworkxOracles:
    """The dynamics' reachability predicates against networkx's algorithms
    — an independent implementation as the oracle."""

    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(graph=connected_graphs(max_nodes=10), data=st.data())
    def test_contiguity_matches_nx_connectivity(self, graph, data):
        cmap = ContaminationMap(graph, strict=False)
        agents = data.draw(st.integers(min_value=1, max_value=3))
        for _ in range(agents):
            cmap.place_agent(0)
        # random legal-ish walk (non-strict: recontamination allowed)
        for _ in range(data.draw(st.integers(min_value=0, max_value=15))):
            guarded = sorted(cmap.guarded_nodes())
            if not guarded:
                break
            src = data.draw(st.sampled_from(guarded))
            dst = data.draw(st.sampled_from(sorted(graph.neighbors(src))))
            cmap.move_agent(src, dst)

        region = cmap.decontaminated_nodes()
        if region:
            induced = graph.to_networkx().subgraph(region)
            assert cmap.is_contiguous() == nx.is_connected(induced)
        else:
            assert cmap.is_contiguous()

    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(graph=connected_graphs(max_nodes=10), data=st.data())
    def test_contamination_state_is_flood_stable(self, graph, data):
        """After any walk, the state is a fixed point of the flood rule:
        states partition V, no clean node borders contamination (else the
        flood would have taken it), and the intruder region — the union of
        the free components containing contamination, per networkx — holds
        no clean node."""
        cmap = ContaminationMap(graph, strict=False)
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            cmap.place_agent(0)
        for _ in range(data.draw(st.integers(min_value=0, max_value=15))):
            guarded = sorted(cmap.guarded_nodes())
            if not guarded:
                break
            src = data.draw(st.sampled_from(guarded))
            dst = data.draw(st.sampled_from(sorted(graph.neighbors(src))))
            cmap.move_agent(src, dst)

        g = graph.to_networkx()
        contaminated = cmap.contaminated_nodes()
        # partition
        assert contaminated | cmap.decontaminated_nodes() == set(g.nodes)
        assert not contaminated & cmap.decontaminated_nodes()
        # flood fixed point
        for v in cmap.clean_nodes():
            assert all(y not in contaminated for y in graph.neighbors(v)), v
        # networkx oracle: within the guard-free subgraph, any connected
        # component touching contamination is entirely contaminated
        free = g.subgraph([v for v in g.nodes if cmap.guards(v) == 0])
        for component in nx.connected_components(free):
            if component & contaminated:
                assert component <= contaminated
