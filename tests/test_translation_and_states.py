"""Tests for homebase translation (XOR automorphisms) and state rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import ScheduleVerifier, verify_schedule
from repro.core.strategy import get_strategy
from repro.errors import ScheduleError
from repro.topology.hypercube import Hypercube
from repro.viz.state_render import render_final_state, render_frames


class TestTranslation:
    @pytest.mark.parametrize("name", ["clean", "visibility", "cloning", "synchronous"])
    @pytest.mark.parametrize("homebase", [0, 1, 5, 7])
    def test_translated_schedule_verifies(self, name, homebase):
        schedule = get_strategy(name).run(3).translated(homebase)
        assert schedule.homebase == homebase
        report = ScheduleVerifier(Hypercube(3)).verify(schedule)
        assert report.ok, report.summary()

    def test_counts_invariant_under_translation(self):
        base = get_strategy("visibility").run(4)
        moved = base.translated(0b1011)
        assert moved.total_moves == base.total_moves
        assert moved.team_size == base.team_size
        assert moved.makespan == base.makespan

    def test_translation_is_involutive(self):
        base = get_strategy("clean").run(3)
        there_and_back = base.translated(5).translated(0)
        assert there_and_back.moves == base.moves
        assert there_and_back.homebase == 0

    def test_rejects_bad_homebase(self):
        with pytest.raises(ScheduleError):
            get_strategy("visibility").run(3).translated(8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.data())
    def test_any_homebase_property(self, d, data):
        homebase = data.draw(st.integers(min_value=0, max_value=(1 << d) - 1))
        schedule = get_strategy("visibility").run(d).translated(homebase)
        report = verify_schedule(schedule)
        assert report.ok
        assert report.first_visit_order[0] == homebase

    def test_translated_metadata_records_mask(self):
        moved = get_strategy("visibility").run(3).translated(6)
        assert moved.metadata["translated_by"] == 6


class TestStateRender:
    def test_frame_count_is_makespan_plus_one(self):
        schedule = get_strategy("visibility").run(3)
        frames = list(render_frames(schedule))
        assert len(frames) == schedule.makespan + 1

    def test_first_frame_all_contaminated(self):
        schedule = get_strategy("visibility").run(3)
        first = next(iter(render_frames(schedule)))
        assert first.count("#") == 7  # everything but the homebase
        assert "t=0" in first

    def test_last_frame_no_contamination(self):
        for name in ("visibility", "clean", "cloning"):
            schedule = get_strategy(name).run(3)
            final = render_final_state(schedule)
            assert "#" not in final.split("(", 1)[1], name
            assert "0 contaminated left" in final

    def test_wave_structure_visible(self):
        """With visibility on H_3, after t=1 level 1 is fully guarded."""
        schedule = get_strategy("visibility").run(3)
        frames = list(render_frames(schedule))
        assert "level 1: AAA" in frames[1]

    def test_size_guard(self):
        schedule = get_strategy("visibility").run(4)
        with pytest.raises(ValueError):
            list(render_frames(schedule, max_nodes=8))

    def test_translated_schedule_renders(self):
        schedule = get_strategy("visibility").run(3).translated(7)
        final = render_final_state(schedule)
        assert "0 contaminated left" in final
