"""Unit tests for the Move/Schedule representation."""

import pytest

from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.errors import ScheduleError
from repro.topology.hypercube import Hypercube


def mk(agent, src, dst, time, role=AgentRole.AGENT, kind=MoveKind.DEPLOY):
    return Move(agent=agent, src=src, dst=dst, time=time, role=role, kind=kind)


class TestMove:
    def test_rejects_zero_time(self):
        with pytest.raises(ScheduleError):
            mk(0, 0, 1, 0)

    def test_rejects_degenerate(self):
        with pytest.raises(ScheduleError):
            mk(0, 3, 3, 1)

    def test_rejects_negative_agent(self):
        with pytest.raises(ScheduleError):
            mk(-1, 0, 1, 1)

    def test_dict_round_trip(self):
        m = mk(2, 0, 4, 3, role=AgentRole.SYNCHRONIZER, kind=MoveKind.ESCORT)
        assert Move.from_dict(m.as_dict()) == m


class TestScheduleMetrics:
    def make(self):
        return Schedule(
            dimension=2,
            strategy="test",
            moves=[
                mk(0, 0, 1, 1),
                mk(1, 0, 2, 1),
                mk(2, 0, 1, 2, role=AgentRole.SYNCHRONIZER, kind=MoveKind.NAVIGATE),
                mk(0, 1, 3, 3),
            ],
            team_size=3,
        )

    def test_counts(self):
        s = self.make()
        assert s.total_moves == 4
        assert s.makespan == 3
        assert s.n == 4
        assert s.agents_used() == 3
        assert s.agent_moves() == 3
        assert s.synchronizer_moves() == 1

    def test_moves_by_kind(self):
        s = self.make()
        kinds = s.moves_by_kind()
        assert kinds[MoveKind.DEPLOY] == 3
        assert kinds[MoveKind.NAVIGATE] == 1

    def test_peak_traveling(self):
        s = self.make()
        assert s.peak_traveling_agents() == 2  # agents 0 and 1 at time 1

    def test_first_visit_order(self):
        s = self.make()
        assert s.first_visit_order() == [0, 1, 2, 3]

    def test_visit_time(self):
        s = self.make()
        times = s.visit_time()
        assert times[0] == 0 and times[1] == 1 and times[3] == 3

    def test_moves_of_agent(self):
        s = self.make()
        assert len(s.moves_of_agent(0)) == 2

    def test_final_positions(self):
        s = self.make()
        assert s.final_positions() == {0: 3, 1: 2, 2: 1}

    def test_by_time_groups(self):
        s = self.make()
        groups = list(s.by_time())
        assert [t for t, _ in groups] == [1, 2, 3]
        assert len(groups[0][1]) == 2

    def test_empty_schedule(self):
        s = Schedule(dimension=0, strategy="noop", team_size=1)
        assert s.total_moves == 0
        assert s.makespan == 0
        assert s.peak_traveling_agents() == 0
        assert list(s.by_time()) == []


class TestValidation:
    def test_valid(self):
        s = TestScheduleMetrics().make()
        s.validate_structure(Hypercube(2))

    def test_rejects_time_regression(self):
        s = Schedule(dimension=2, strategy="t", moves=[mk(0, 0, 1, 2), mk(1, 0, 2, 1)], team_size=2)
        with pytest.raises(ScheduleError):
            s.validate_structure()

    def test_rejects_position_jump(self):
        s = Schedule(dimension=2, strategy="t", moves=[mk(0, 0, 1, 1), mk(0, 2, 3, 2)], team_size=1)
        with pytest.raises(ScheduleError):
            s.validate_structure()

    def test_rejects_double_move_same_time(self):
        s = Schedule(dimension=2, strategy="t", moves=[mk(0, 0, 1, 1), mk(0, 1, 3, 1)], team_size=1)
        with pytest.raises(ScheduleError):
            s.validate_structure()

    def test_rejects_non_homebase_start(self):
        s = Schedule(dimension=2, strategy="t", moves=[mk(0, 1, 3, 1)], team_size=1)
        with pytest.raises(ScheduleError):
            s.validate_structure()

    def test_cloning_allows_remote_first_appearance(self):
        s = Schedule(
            dimension=2,
            strategy="t",
            moves=[mk(0, 0, 1, 1), mk(1, 1, 3, 2)],
            team_size=2,
            uses_cloning=True,
        )
        s.validate_structure(Hypercube(2))

    def test_rejects_non_edge_with_topology(self):
        s = Schedule(dimension=2, strategy="t", moves=[mk(0, 0, 3, 1)], team_size=1)
        with pytest.raises(ScheduleError):
            s.validate_structure(Hypercube(2))

    def test_rejects_team_overflow(self):
        s = Schedule(dimension=2, strategy="t", moves=[mk(0, 0, 1, 1), mk(1, 0, 2, 1)], team_size=1)
        with pytest.raises(ScheduleError):
            s.validate_structure()


class TestSerialization:
    def test_json_round_trip(self):
        s = TestScheduleMetrics().make()
        s.metadata["note"] = "hello"
        back = Schedule.from_json(s.to_json())
        assert back.moves == s.moves
        assert back.team_size == s.team_size
        assert back.metadata == s.metadata
        assert back.strategy == s.strategy

    def test_summary_text(self):
        s = TestScheduleMetrics().make()
        text = s.summary()
        assert "test(d=2)" in text and "moves=4" in text
