"""Tests for Algorithm 1 CLEAN (schedule plane): Theorems 1-4, Lemmas 1-4."""

import pytest

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.clean import SYNCHRONIZER_ID, CleanStrategy
from repro.core.schedule import MoveKind
from repro.core.states import AgentRole
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

DIMS = list(range(0, 9))


@pytest.fixture(scope="module")
def schedules():
    strategy = CleanStrategy()
    return {d: strategy.run(d) for d in DIMS}


class TestCorrectness:
    """Theorem 1: all nodes cleaned, no recontamination (plus contiguity
    and intruder capture, checked by exact replay)."""

    @pytest.mark.parametrize("d", DIMS)
    def test_invariants(self, schedules, d):
        report = verify_schedule(schedules[d])
        assert report.monotone
        assert report.contiguous
        assert report.complete
        assert report.intruder_captured
        assert report.ok

    def test_strict_per_move_contiguity(self, schedules):
        report = verify_schedule(schedules[5], check_contiguity_every_move=True)
        assert report.ok

    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_structure_valid(self, schedules, d):
        schedules[d].validate_structure(Hypercube(d))


class TestTheorem2Agents:
    @pytest.mark.parametrize("d", DIMS)
    def test_team_size_matches_formula(self, schedules, d):
        assert schedules[d].team_size == formulas.clean_peak_agents(d)

    @pytest.mark.parametrize("d", range(1, 9))
    def test_extras_match_lemma_3(self, schedules, d):
        extras = schedules[d].metadata["extras_per_level"]
        for level, count in extras.items():
            assert count == formulas.extra_agents_for_level(d, level)

    @pytest.mark.parametrize("d", range(2, 9))
    def test_active_agents_match_lemma_4(self, schedules, d):
        active = schedules[d].metadata["active_per_level"]
        for level in range(1, d):
            assert active[level] == formulas.clean_active_agents_during_pass(d, level)


class TestTheorem3Moves:
    @pytest.mark.parametrize("d", DIMS)
    def test_agent_moves_exact(self, schedules, d):
        """Agent component: sum over leaves of 2*level = (n/2)(log n + 1)."""
        measured = schedules[d].moves_by_role()[AgentRole.AGENT]
        assert measured == formulas.clean_agent_moves_exact(d)

    @pytest.mark.parametrize("d", range(1, 9))
    def test_sync_moves_within_bound(self, schedules, d):
        measured = schedules[d].moves_by_role()[AgentRole.SYNCHRONIZER]
        assert measured <= formulas.clean_sync_moves_upper_bound(d)

    @pytest.mark.parametrize("d", range(1, 9))
    def test_escort_component_exact(self, schedules, d):
        """Component 4: every broadcast-tree edge escorted twice = 2(n-1)."""
        escorts = schedules[d].moves_by_kind()[MoveKind.ESCORT]
        assert escorts == formulas.clean_sync_escort_moves(d)

    @pytest.mark.parametrize("d", range(2, 9))
    def test_total_moves_O_n_log_n(self, schedules, d):
        assert schedules[d].total_moves <= formulas.clean_total_moves_upper_bound(d)

    @pytest.mark.parametrize("d", range(1, 9))
    def test_deploy_moves_one_per_nonroot_node(self, schedules, d):
        """Each non-root node receives its guard through exactly one tree
        edge deploy."""
        deploys = schedules[d].moves_by_kind()[MoveKind.DEPLOY]
        assert deploys == (1 << d) - 1

    @pytest.mark.parametrize("d", range(1, 9))
    def test_every_plain_agent_returns_to_root(self, schedules, d):
        """All worker agents end back at the root (the synchronizer stays
        wherever its last pass left it)."""
        positions = schedules[d].final_positions()
        positions.pop(SYNCHRONIZER_ID, None)
        assert set(positions.values()) <= {0}


class TestTheorem4Time:
    @pytest.mark.parametrize("d", range(2, 9))
    def test_makespan_O_n_log_n(self, schedules, d):
        n = 1 << d
        assert schedules[d].makespan <= 4 * n * d

    @pytest.mark.parametrize("d", range(1, 9))
    def test_makespan_at_least_sync_moves(self, schedules, d):
        """The process is sequential: the synchronizer's walk lower-bounds
        the ideal time."""
        sync_moves = schedules[d].moves_by_role()[AgentRole.SYNCHRONIZER]
        assert schedules[d].makespan >= sync_moves


class TestCleaningOrder:
    """Figure 2: level by level, increasing (lexicographic) within level."""

    @pytest.mark.parametrize("d", range(1, 7))
    def test_levels_cleaned_in_order(self, schedules, d):
        h = Hypercube(d)
        order = schedules[d].first_visit_order()
        levels = [h.level(x) for x in order]
        assert levels == sorted(levels)

    def test_level_one_visited_in_child_order(self, schedules):
        h = Hypercube(4)
        order = schedules[4].first_visit_order()
        level1 = [x for x in order if h.level(x) == 1]
        assert level1 == [1, 2, 4, 8]

    def test_all_nodes_visited_exactly_once(self, schedules):
        order = schedules[5].first_visit_order()
        assert sorted(order) == list(range(32))

    def test_figure_2_h4_order(self, schedules):
        """The H_4 cleaning order: root, level 1 in dimension order, then
        each level in increasing integer order of tree parents."""
        order = schedules[4].first_visit_order()
        assert order[0] == 0
        assert order[1:5] == [1, 2, 4, 8]
        # level 2 nodes appear grouped by parent in increasing parent order
        h = Hypercube(4)
        tree = BroadcastTree(h)
        level2 = [x for x in order if h.level(x) == 2]
        parents = [tree.parent(x) for x in level2]
        assert parents == sorted(parents)


class TestSynchronizerBehaviour:
    def test_synchronizer_is_agent_zero(self, schedules):
        sync_moves = [m for m in schedules[4].moves if m.role is AgentRole.SYNCHRONIZER]
        assert all(m.agent == SYNCHRONIZER_ID for m in sync_moves)

    def test_synchronizer_never_enters_contaminated_territory_alone(self, schedules):
        """The synchronizer's navigate moves only touch already-safe nodes
        (its meet-routed paths stay at or below the active level)."""
        d = 5
        h = Hypercube(d)
        visited_at = {}
        for m in schedules[d].moves:
            if m.dst not in visited_at:
                visited_at[m.dst] = (m.agent, m.kind)
        # every node is first reached by a DEPLOY or DISPATCH (a worker
        # extending the frontier), never by a synchronizer NAVIGATE
        for node, (agent, kind) in visited_at.items():
            if node == 0:
                continue
            assert kind in (MoveKind.DEPLOY, MoveKind.DISPATCH), (node, kind)

    @pytest.mark.parametrize("d", range(1, 8))
    def test_intra_level_hops_within_paper_bound(self, d):
        """Step 3 of the Theorem 3 accounting: consecutive level-l nodes are
        within 2*min(l, d-l) hops."""
        h = Hypercube(d)
        for level in range(1, d):
            nodes = h.level_nodes(level)
            for a, b in zip(nodes, nodes[1:]):
                assert h.distance(a, b) <= 2 * min(level, d - level)


class TestDegenerate:
    def test_d0_empty(self, schedules):
        assert schedules[0].total_moves == 0
        assert schedules[0].team_size == 1

    def test_d1_two_agents(self, schedules):
        assert schedules[1].team_size == 2
        assert verify_schedule(schedules[1]).ok
