"""Tests for the shared parallel runners (``repro.exec.runner``).

The contract under test: a parallel sweep/experiment batch is
row-for-row identical to its serial twin, a crashed cell is retried to
the same numbers, a permanently failed cell degrades to a rendered
``FAILED`` entry (complete table, exit path decided by the caller), and
the merged manifest records per-cell provenance.
"""

import json

import pytest

from repro.analysis.experiments import run_experiment
from repro.analysis.sweeps import run_sweep
from repro.exec import (
    CRASH_ENV,
    ExecutorConfig,
    experiment_jobs,
    merged_manifest,
    parallel_experiments,
    parallel_sweep,
    sweep_jobs,
    write_merged_manifest,
)

FAST = ExecutorConfig(jobs=2, retries=2, backoff_base=0.0, backoff_max=0.0)

STRATEGIES = ["clean", "visibility"]
DIMS = [3, 4]


class TestSweepJobs:
    def test_serial_cell_order(self):
        jobs = sweep_jobs(STRATEGIES, DIMS)
        assert [j.key for j in jobs] == [
            "sweep:clean:d=3",
            "sweep:clean:d=4",
            "sweep:visibility:d=3",
            "sweep:visibility:d=4",
        ]
        assert [j.index for j in jobs] == [0, 1, 2, 3]
        assert all(j.task == "sweep_cell" for j in jobs)

    def test_payloads_are_json_able(self):
        for job in sweep_jobs(STRATEGIES, DIMS, verify=False):
            json.dumps(job.spec())  # must not raise


class TestParallelSweep:
    def test_matches_serial_rows(self):
        _, serial_rows = run_sweep(STRATEGIES, DIMS)
        _, rows, outcomes = parallel_sweep(STRATEGIES, DIMS, FAST)
        assert [r.as_flat_dict() for r in rows] == [
            r.as_flat_dict() for r in serial_rows
        ]
        assert all(o.ok for o in outcomes)

    def test_crashed_cell_is_retried_to_the_same_table(self, monkeypatch):
        """SIGKILL one worker mid-job: the final table must still be
        byte-identical to the serial sweep, with the killed cell retried."""
        monkeypatch.setenv(CRASH_ENV, "sweep:clean:d=4")
        sweep, rows, outcomes = parallel_sweep(STRATEGIES, DIMS, FAST)
        _, serial_rows = run_sweep(STRATEGIES, DIMS)
        assert sweep.to_text(rows) == sweep.to_text(serial_rows)
        by_key = {o.key: o for o in outcomes}
        assert by_key["sweep:clean:d=4"].attempts == 2
        assert all(o.ok for o in outcomes)

    def test_failed_cell_degrades_to_failed_row(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "sweep:clean:d=3::99")  # out-crash the cap
        sweep, rows, outcomes = parallel_sweep(STRATEGIES, DIMS, FAST)
        assert len(rows) == len(DIMS) * len(STRATEGIES)  # complete grid
        failed = [r for r in rows if not r.ok]
        assert [(r.strategy, r.dimension) for r in failed] == [("clean", 3)]
        assert failed[0].values == {}
        text = sweep.to_text(rows)
        assert "FAILED" in text and "Traceback" not in text
        csv_text = sweep.to_csv(rows)
        assert csv_text.splitlines()[0].endswith(",status")

    def test_unknown_strategy_is_a_failed_row_not_a_crash(self):
        sweep, rows, outcomes = parallel_sweep(["no-such-strategy"], [3], FAST)
        assert not rows[0].ok
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 1  # deterministic error: no retries

    def test_checkpoint_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        _, first, _ = parallel_sweep(STRATEGIES, DIMS, FAST, checkpoint=path)
        _, second, outcomes = parallel_sweep(STRATEGIES, DIMS, FAST, checkpoint=path)
        assert [r.as_flat_dict() for r in second] == [r.as_flat_dict() for r in first]
        assert all(o.cached for o in outcomes)


class TestParallelExperiments:
    def test_single_experiment_matches_serial(self):
        ids = [experiment_jobs()[0].payload["id"]]
        serial = run_experiment(ids[0])
        results, outcomes = parallel_experiments(ids, FAST)
        assert len(results) == 1
        assert results[0].experiment_id == serial.experiment_id
        assert results[0].title == serial.title
        assert results[0].passed == serial.passed
        assert results[0].lines == serial.lines
        assert outcomes[0].ok

    def test_failed_experiment_degrades(self, monkeypatch):
        ids = [experiment_jobs()[0].payload["id"]]
        monkeypatch.setenv(CRASH_ENV, f"experiment:{ids[0]}::99")
        results, outcomes = parallel_experiments(ids, FAST)
        assert not results[0].passed
        assert results[0].lines[0].startswith("EXECUTOR FAILED:")
        assert results[0].title  # resolved from the registry, not a placeholder
        assert not outcomes[0].ok


class TestMergedManifest:
    def test_per_cell_provenance(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "sweep:clean:d=4")
        _, _, outcomes = parallel_sweep(STRATEGIES, DIMS, FAST)
        manifest = merged_manifest(outcomes, extra={"kind": "sweep"})
        assert manifest["schema"] == "repro-manifest/v1"
        extra = manifest["extra"]
        assert extra["kind"] == "sweep"
        assert extra["failed"] == 0
        assert extra["retried"] == 1
        cells = {c["key"]: c for c in extra["cells"]}
        assert cells["sweep:clean:d=4"]["attempts"] == 2
        assert all(c["status"] == "ok" for c in cells.values())

    def test_write_creates_parents(self, tmp_path):
        _, _, outcomes = parallel_sweep(["clean"], [3], FAST)
        target = tmp_path / "deep" / "nested" / "merged.json"
        written = write_merged_manifest(target, outcomes)
        assert written == target
        data = json.loads(target.read_text())
        assert data["extra"]["failed"] == 0
        assert target.read_text().endswith("\n")


class TestDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_worker_count_never_changes_the_table(self, jobs):
        config = ExecutorConfig(jobs=jobs, retries=0)
        sweep, rows, _ = parallel_sweep(STRATEGIES, DIMS, config)
        _, serial_rows = run_sweep(STRATEGIES, DIMS)
        assert sweep.to_csv(rows) == sweep.to_csv(serial_rows)
