"""Tests for the invariant probes, including an injected violation.

The acceptance case: a deliberately broken protocol that abandons a guard
early must produce a monotonicity diagnostic naming the agent, the node,
the event kind and the simulation time — at the violating event, not at
the end of the run.
"""

import pytest

from repro.obs import (
    ContiguityProbe,
    GuardCoverageProbe,
    InvariantViolation,
    MonotonicityProbe,
    standard_probes,
)
from repro.obs.events import MoveEvent, WaitEvent
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.agent import Move, Terminate
from repro.sim.engine import Engine
from repro.topology.generic import path_graph


def abandoning_walker(ctx):
    """Fixture protocol: cleans 0->1 then retreats, abandoning the guard on
    node 1 while node 2 is still contaminated — a monotonicity breach."""
    yield Move(1)
    yield Move(0)  # vacates node 1; node 2 recontaminates it
    yield Terminate()


class TestMonotonicityProbe:
    def test_clean_run_is_ok(self):
        probe = MonotonicityProbe(mode="strict")
        result = run_visibility_protocol(3, subscribers=[probe])
        assert result.ok and probe.ok
        assert probe.violations == []

    def test_injected_violation_strict_aborts_run(self):
        probe = MonotonicityProbe(mode="strict")
        engine = Engine(path_graph(3), [abandoning_walker], subscribers=[probe])
        with pytest.raises(InvariantViolation) as exc:
            engine.run()
        violation = exc.value.violation
        assert violation.probe == "monotonicity"
        assert violation.agent == 0
        assert violation.node == 0  # destination of the abandoning move
        assert violation.event_kind == "move"
        assert violation.time == 2.0  # second unit-delay move completes at t=2

    def test_injected_violation_diagnostic_names_everything(self):
        """The acceptance criterion: the diagnostic string itself carries
        agent, node, event context and sim-time."""
        probe = MonotonicityProbe(mode="lenient")
        result = Engine(
            path_graph(3), [abandoning_walker], subscribers=[probe]
        ).run()
        assert not result.monotone  # the engine agrees post-hoc
        assert len(probe.violations) == 1
        text = probe.violations[0].describe()
        assert "monotonicity:" in text
        assert "agent 0" in text
        assert "node 1" in text  # the vacated/recontaminated node
        assert "t=2" in text
        assert "move 1->0" in text
        assert "neighbour 2" in text  # the contamination source

    def test_lenient_mode_keeps_running(self):
        probe = MonotonicityProbe(mode="lenient")
        result = Engine(
            path_graph(3), [abandoning_walker], subscribers=[probe]
        ).run()
        # run completed (agent terminated) despite the recorded breach
        assert result.terminated_agents == 1
        assert not probe.ok

    def test_ignores_non_move_events(self):
        probe = MonotonicityProbe(mode="strict")
        probe(WaitEvent(time=1.0, agent=0, node=0))
        assert probe.ok


class TestContiguityProbe:
    def test_clean_run_is_ok(self):
        probe = ContiguityProbe(mode="strict")
        result = run_visibility_protocol(3, subscribers=[probe])
        assert result.ok and probe.ok

    def test_fires_on_transition_only(self):
        probe = ContiguityProbe(mode="lenient")
        base = dict(agent=1, node=4, src=5)
        probe(MoveEvent(time=1.0, contiguous=True, **base))
        probe(MoveEvent(time=2.0, contiguous=False, **base))
        probe(MoveEvent(time=3.0, contiguous=False, **base))  # still broken
        probe(MoveEvent(time=4.0, contiguous=True, **base))  # repaired
        probe(MoveEvent(time=5.0, contiguous=False, **base))  # breaks again
        assert len(probe.violations) == 2
        assert [v.time for v in probe.violations] == [2.0, 5.0]
        assert "disconnected" in probe.violations[0].message

    def test_skips_unverified_moves(self):
        probe = ContiguityProbe(mode="strict")
        probe(MoveEvent(time=1.0, agent=0, node=1, src=0, contiguous=None))
        assert probe.ok


class TestGuardCoverageProbe:
    def test_clean_run_is_ok(self):
        probe = GuardCoverageProbe(mode="strict")
        result = run_visibility_protocol(4, subscribers=[probe])
        assert result.ok and probe.ok

    def test_fires_on_inconsistent_masks(self):
        """Synthetic mis-evolved state: node 1 clean, unguarded, and on the
        frontier — the dynamics should never produce this."""
        probe = GuardCoverageProbe(mode="strict")
        with pytest.raises(InvariantViolation) as exc:
            probe(
                MoveEvent(
                    time=3.5,
                    agent=2,
                    node=4,
                    src=0,
                    clean_mask=0b0010,
                    guard_mask=0b10000,
                    frontier_mask=0b0010,
                )
            )
        violation = exc.value.violation
        assert violation.probe == "guard-coverage"
        assert "node 1" in violation.message
        assert violation.time == 3.5

    def test_guarded_frontier_is_fine(self):
        probe = GuardCoverageProbe(mode="strict")
        probe(
            MoveEvent(
                time=1.0,
                agent=0,
                node=1,
                src=0,
                clean_mask=0b0001,
                guard_mask=0b0010,
                frontier_mask=0b0010,
            )
        )
        assert probe.ok


class TestProbeMachinery:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            MonotonicityProbe(mode="ignore")

    def test_standard_probes(self):
        probes = standard_probes(mode="lenient")
        assert len(probes) == 3
        assert {p.name for p in probes} == {
            "monotonicity",
            "contiguity",
            "guard-coverage",
        }
        assert all(p.mode == "lenient" for p in probes)

    def test_full_panel_on_violating_run(self):
        probes = standard_probes(mode="lenient")
        Engine(path_graph(3), [abandoning_walker], subscribers=probes).run()
        by_name = {p.name: p for p in probes}
        assert not by_name["monotonicity"].ok
        # the retreat keeps the region connected and the masks consistent
        assert by_name["contiguity"].ok
        assert by_name["guard-coverage"].ok
