"""Tests for the sweep framework, telemetry, and periodic cleaning."""

import pytest

from repro.analysis.sweeps import Sweep, SweepRow, run_sweep
from repro.errors import ReproError
from repro.sim.reinfection import PeriodicCleaning
from repro.sim.telemetry import analyze_trace


class TestSweep:
    def test_grid_shape(self):
        sweep, rows = run_sweep(["visibility", "cloning"], [2, 3, 4])
        assert len(rows) == 6
        assert {r.strategy for r in rows} == {"visibility", "cloning"}

    def test_standard_columns_present(self):
        _, rows = run_sweep(["visibility"], [3])
        row = rows[0]
        assert row.values["agents"] == 4
        assert row.values["moves"] == 8
        assert row.values["steps"] == 3
        assert row.values["sync_moves"] == 0

    def test_extra_metrics(self):
        sweep, rows = run_sweep(
            ["visibility"],
            [3, 4],
            extra_metrics={"peak_travel": lambda s: s.peak_traveling_agents()},
        )
        assert all("peak_travel" in r.values for r in rows)
        assert "peak_travel" in sweep.columns()

    def test_csv_round_trips(self):
        import csv
        import io

        sweep, rows = run_sweep(["clean"], [2, 3])
        text = sweep.to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["strategy"] == "clean"
        assert int(parsed[1]["agents"]) == 5

    def test_text_render(self):
        sweep, rows = run_sweep(["visibility"], [2])
        text = sweep.to_text(rows)
        assert "visibility" in text and "agents" in text

    def test_series_extraction(self):
        sweep, rows = run_sweep(["visibility"], [2, 3, 4])
        assert sweep.series(rows, "visibility", "agents") == [2, 4, 8]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Sweep([], [3])
        with pytest.raises(ReproError):
            Sweep(["visibility"], [])

    def test_flat_dict(self):
        row = SweepRow("x", 3, 8, {"agents": 4})
        flat = row.as_flat_dict()
        assert flat == {"strategy": "x", "d": 3, "n": 8, "agents": 4}


class TestTelemetry:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.protocols.visibility_protocol import run_visibility_protocol

        return run_visibility_protocol(4)

    def test_totals_match_trace(self, result):
        telemetry = analyze_trace(result.trace)
        assert telemetry.total_moves == result.total_moves
        assert telemetry.makespan == result.makespan
        assert telemetry.terminations == result.team_size

    def test_node_traffic_sums_to_moves(self, result):
        telemetry = analyze_trace(result.trace)
        assert sum(telemetry.node_traffic.values()) == telemetry.total_moves
        assert sum(telemetry.link_traffic.values()) == telemetry.total_moves

    def test_hottest_node_is_a_big_subtree_root(self, result):
        """Traffic concentrates where the squads are largest: node 1, the
        root of the T(d-1) subtree, receives the largest squad."""
        telemetry = analyze_trace(result.trace)
        assert telemetry.hottest_node is not None
        node, arrivals = telemetry.hottest_node
        assert node == 1
        assert arrivals == 4  # agents_for_type(d-1) = 2^{d-2} = 4 at d=4

    def test_agent_moves_bounded_by_depth(self, result):
        telemetry = analyze_trace(result.trace)
        assert max(telemetry.agent_moves.values()) <= 4  # root-to-leaf <= d

    def test_wait_time_accrued(self, result):
        telemetry = analyze_trace(result.trace)
        # most agents must wait for squads and safety before moving
        assert telemetry.total_wait_time > 0

    def test_cloning_telemetry(self):
        from repro.protocols.cloning_protocol import run_cloning_protocol

        result = run_cloning_protocol(4)
        telemetry = analyze_trace(result.trace)
        assert telemetry.clones_created == result.team_size - 1
        assert telemetry.total_moves == 15

    def test_describe(self, result):
        text = analyze_trace(result.trace).describe()
        assert "hottest node" in text and "moves/agent" in text


class TestTelemetryEdgeCases:
    """analyze_trace on synthetic traces: empty traffic, write/wake events,
    overlapping waits, crashes."""

    @staticmethod
    def _trace(events):
        from repro.sim.trace import Trace, TraceEvent

        trace = Trace()
        for time, kind, agent, node, data in events:
            trace.log(TraceEvent(time=time, kind=kind, agent=agent, node=node, data=data))
        return trace

    def test_empty_trace_hottest_is_none(self):
        """Regression: empty traffic used to read as (0, 0) — i.e. 'node 0
        had 0 arrivals' — instead of 'no traffic at all'."""
        from repro.sim.trace import Trace

        telemetry = analyze_trace(Trace())
        assert telemetry.hottest_node is None
        assert telemetry.hottest_link is None
        assert telemetry.total_moves == 0
        text = telemetry.describe()
        assert "none (no traffic)" in text

    def test_no_moves_but_events_hottest_is_none(self):
        trace = self._trace(
            [
                (0.0, "wait", 0, 0, {"why": "squad"}),
                (1.0, "terminate", 0, 0, {}),
            ]
        )
        telemetry = analyze_trace(trace)
        assert telemetry.hottest_node is None
        assert telemetry.hottest_link is None
        assert telemetry.agent_wait_time == {0: 1.0}

    def test_write_events_do_not_affect_traffic(self):
        trace = self._trace(
            [
                (0.5, "write", 0, 0, {"key": "state"}),
                (1.0, "move", 0, 1, {"src": 0}),
                (1.5, "write", 0, 1, {"key": "state"}),
            ]
        )
        telemetry = analyze_trace(trace)
        assert telemetry.total_moves == 1
        assert telemetry.node_traffic == {1: 1}
        assert telemetry.link_traffic == {(0, 1): 1}

    def test_wake_closes_wait_interval(self):
        trace = self._trace(
            [
                (1.0, "wait", 3, 5, {"why": "guard"}),
                (4.0, "wake", 3, 5, {}),
                (9.0, "move", 3, 7, {"src": 5}),
            ]
        )
        telemetry = analyze_trace(trace)
        # blocked 1.0 -> 4.0 only; the wake ends the interval, not the move
        assert telemetry.agent_wait_time == {3: 3.0}

    def test_overlapping_waits_counted_once(self):
        """A second wait before the wake must not restart (or stack) the
        interval: setdefault keeps the first wait's start time."""
        trace = self._trace(
            [
                (1.0, "wait", 2, 4, {"why": "squad"}),
                (2.0, "wait", 2, 4, {"why": "safety"}),
                (5.0, "wake", 2, 4, {}),
            ]
        )
        telemetry = analyze_trace(trace)
        assert telemetry.agent_wait_time == {2: 4.0}

    def test_unclosed_wait_accrues_to_makespan(self):
        trace = self._trace(
            [
                (1.0, "wait", 0, 0, {"why": "squad"}),
                (6.0, "move", 1, 2, {"src": 0}),
            ]
        )
        telemetry = analyze_trace(trace)
        assert telemetry.agent_wait_time == {0: 5.0}

    def test_crash_closes_wait_without_termination(self):
        trace = self._trace(
            [
                (1.0, "wait", 0, 3, {"why": "squad"}),
                (2.5, "crash", 0, 3, {}),
                (9.0, "terminate", 1, 0, {}),
            ]
        )
        telemetry = analyze_trace(trace)
        assert telemetry.agent_wait_time == {0: 1.5}
        assert telemetry.terminations == 1


class TestPeriodicCleaning:
    def test_periods_accumulate(self):
        service = PeriodicCleaning(dimension=3, strategy="visibility", rng_seed=1)
        history = service.run(4)
        assert len(history) == 4
        assert all(p.captured for p in history)
        assert service.total_moves == 4 * 8

    def test_rotating_homebase(self):
        service = PeriodicCleaning(
            dimension=4, strategy="visibility", rotate_homebase=True, rng_seed=3
        )
        service.run(6)
        homebases = {p.homebase for p in service.history}
        assert len(homebases) > 1  # actually rotates

    def test_seeds_avoid_homebase(self):
        service = PeriodicCleaning(
            dimension=3, seeds_per_period=3, rotate_homebase=True, rng_seed=5
        )
        for period in service.run(5):
            assert period.homebase not in period.seeds

    def test_amortized_overhead(self):
        service = PeriodicCleaning(dimension=4, strategy="cloning", rng_seed=0)
        service.run(3)
        # cloning: n-1 moves per period over n hosts
        assert service.amortized_overhead() == pytest.approx(15 / 16)

    def test_describe(self):
        service = PeriodicCleaning(dimension=3, rng_seed=0)
        service.run(2)
        text = service.describe()
        assert "2 periods" in text and "amortized overhead" in text

    def test_bad_seeds_rejected(self):
        with pytest.raises(ReproError):
            PeriodicCleaning(dimension=3, seeds_per_period=0)

    def test_reproducible(self):
        a = PeriodicCleaning(dimension=3, rotate_homebase=True, rng_seed=9)
        b = PeriodicCleaning(dimension=3, rotate_homebase=True, rng_seed=9)
        assert [p.homebase for p in a.run(5)] == [p.homebase for p in b.run(5)]


class TestFailedRows:
    """Rendering of executor-degraded cells (status="failed")."""

    def _mixed_rows(self):
        sweep = Sweep(["clean"], [3, 4])
        ok = SweepRow(
            strategy="clean", dimension=3, n=8,
            values={"agents": 4, "moves": 10, "agent_moves": 10, "sync_moves": 0, "steps": 5},
        )
        bad = SweepRow(strategy="clean", dimension=4, n=16, values={}, status="failed")
        return sweep, [ok, bad]

    def test_ok_rows_keep_the_historical_flat_shape(self):
        ok = SweepRow(strategy="x", dimension=3, n=8, values={"agents": 4})
        assert ok.as_flat_dict() == {"strategy": "x", "d": 3, "n": 8, "agents": 4}
        assert ok.ok

    def test_failed_row_flat_dict_carries_status(self):
        bad = SweepRow(strategy="x", dimension=3, n=8, values={}, status="failed")
        assert bad.as_flat_dict()["status"] == "failed"
        assert not bad.ok

    def test_text_renders_failed_cells(self):
        sweep, rows = self._mixed_rows()
        text = sweep.to_text(rows)
        assert "FAILED" in text
        assert len(text.splitlines()) == 4  # header, rule, two rows

    def test_csv_adds_status_column_only_when_needed(self):
        sweep, rows = self._mixed_rows()
        with_failure = sweep.to_csv(rows)
        assert with_failure.splitlines()[0].endswith(",status")
        assert ",ok" in with_failure.splitlines()[1]
        assert ",failed" in with_failure.splitlines()[2]
        clean_only = sweep.to_csv(rows[:1])
        assert not clean_only.splitlines()[0].endswith(",status")
