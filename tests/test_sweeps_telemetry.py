"""Tests for the sweep framework, telemetry, and periodic cleaning."""

import pytest

from repro.analysis.sweeps import Sweep, SweepRow, run_sweep
from repro.errors import ReproError
from repro.sim.reinfection import PeriodicCleaning
from repro.sim.telemetry import analyze_trace


class TestSweep:
    def test_grid_shape(self):
        sweep, rows = run_sweep(["visibility", "cloning"], [2, 3, 4])
        assert len(rows) == 6
        assert {r.strategy for r in rows} == {"visibility", "cloning"}

    def test_standard_columns_present(self):
        _, rows = run_sweep(["visibility"], [3])
        row = rows[0]
        assert row.values["agents"] == 4
        assert row.values["moves"] == 8
        assert row.values["steps"] == 3
        assert row.values["sync_moves"] == 0

    def test_extra_metrics(self):
        sweep, rows = run_sweep(
            ["visibility"],
            [3, 4],
            extra_metrics={"peak_travel": lambda s: s.peak_traveling_agents()},
        )
        assert all("peak_travel" in r.values for r in rows)
        assert "peak_travel" in sweep.columns()

    def test_csv_round_trips(self):
        import csv
        import io

        sweep, rows = run_sweep(["clean"], [2, 3])
        text = sweep.to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["strategy"] == "clean"
        assert int(parsed[1]["agents"]) == 5

    def test_text_render(self):
        sweep, rows = run_sweep(["visibility"], [2])
        text = sweep.to_text(rows)
        assert "visibility" in text and "agents" in text

    def test_series_extraction(self):
        sweep, rows = run_sweep(["visibility"], [2, 3, 4])
        assert sweep.series(rows, "visibility", "agents") == [2, 4, 8]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Sweep([], [3])
        with pytest.raises(ReproError):
            Sweep(["visibility"], [])

    def test_flat_dict(self):
        row = SweepRow("x", 3, 8, {"agents": 4})
        flat = row.as_flat_dict()
        assert flat == {"strategy": "x", "d": 3, "n": 8, "agents": 4}


class TestTelemetry:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.protocols.visibility_protocol import run_visibility_protocol

        return run_visibility_protocol(4)

    def test_totals_match_trace(self, result):
        telemetry = analyze_trace(result.trace)
        assert telemetry.total_moves == result.total_moves
        assert telemetry.makespan == result.makespan
        assert telemetry.terminations == result.team_size

    def test_node_traffic_sums_to_moves(self, result):
        telemetry = analyze_trace(result.trace)
        assert sum(telemetry.node_traffic.values()) == telemetry.total_moves
        assert sum(telemetry.link_traffic.values()) == telemetry.total_moves

    def test_hottest_node_is_a_big_subtree_root(self, result):
        """Traffic concentrates where the squads are largest: node 1, the
        root of the T(d-1) subtree, receives the largest squad."""
        telemetry = analyze_trace(result.trace)
        node, arrivals = telemetry.hottest_node
        assert node == 1
        assert arrivals == 4  # agents_for_type(d-1) = 2^{d-2} = 4 at d=4

    def test_agent_moves_bounded_by_depth(self, result):
        telemetry = analyze_trace(result.trace)
        assert max(telemetry.agent_moves.values()) <= 4  # root-to-leaf <= d

    def test_wait_time_accrued(self, result):
        telemetry = analyze_trace(result.trace)
        # most agents must wait for squads and safety before moving
        assert telemetry.total_wait_time > 0

    def test_cloning_telemetry(self):
        from repro.protocols.cloning_protocol import run_cloning_protocol

        result = run_cloning_protocol(4)
        telemetry = analyze_trace(result.trace)
        assert telemetry.clones_created == result.team_size - 1
        assert telemetry.total_moves == 15

    def test_describe(self, result):
        text = analyze_trace(result.trace).describe()
        assert "hottest node" in text and "moves/agent" in text


class TestPeriodicCleaning:
    def test_periods_accumulate(self):
        service = PeriodicCleaning(dimension=3, strategy="visibility", rng_seed=1)
        history = service.run(4)
        assert len(history) == 4
        assert all(p.captured for p in history)
        assert service.total_moves == 4 * 8

    def test_rotating_homebase(self):
        service = PeriodicCleaning(
            dimension=4, strategy="visibility", rotate_homebase=True, rng_seed=3
        )
        service.run(6)
        homebases = {p.homebase for p in service.history}
        assert len(homebases) > 1  # actually rotates

    def test_seeds_avoid_homebase(self):
        service = PeriodicCleaning(
            dimension=3, seeds_per_period=3, rotate_homebase=True, rng_seed=5
        )
        for period in service.run(5):
            assert period.homebase not in period.seeds

    def test_amortized_overhead(self):
        service = PeriodicCleaning(dimension=4, strategy="cloning", rng_seed=0)
        service.run(3)
        # cloning: n-1 moves per period over n hosts
        assert service.amortized_overhead() == pytest.approx(15 / 16)

    def test_describe(self):
        service = PeriodicCleaning(dimension=3, rng_seed=0)
        service.run(2)
        text = service.describe()
        assert "2 periods" in text and "amortized overhead" in text

    def test_bad_seeds_rejected(self):
        with pytest.raises(ReproError):
            PeriodicCleaning(dimension=3, seeds_per_period=0)

    def test_reproducible(self):
        a = PeriodicCleaning(dimension=3, rotate_homebase=True, rng_seed=9)
        b = PeriodicCleaning(dimension=3, rotate_homebase=True, rng_seed=9)
        assert [p.homebase for p in a.run(5)] == [p.homebase for p in b.run(5)]
