"""Tests for the bounded-memory chunk-stream plane.

Four contracts:

* **equivalence** — for every strategy and any chunk size (one move, a
  prime, a power of two, larger than the whole schedule), the chunked
  pipeline is indistinguishable from the monolithic one: concatenated
  chunks compile to the same bytes, ``batch_verify_chunks`` returns the
  same report, ``measure_chunks`` the same metric columns;
* **boundedness** — a native streaming producer feeding the streaming
  verifier holds O(chunk + n) memory, never the O(moves) plane
  (``tracemalloc`` ceiling at d=14, where the move plane alone is tens
  of megabytes);
* **warm-path materialization** — columnar consumers served from a warm
  cache (``compiled_for``, ``stream_chunks``) construct zero ``Move``
  objects; only ``schedule_for`` decompiles;
* **chunked cache robustness** — the v2 blob round-trips cold→warm with
  per-chunk counters, splices over a corrupt chunk by regenerating, and
  each layout falls back to the other so a cell is stored once.
"""

import tracemalloc

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import STREAM_DIMENSION_THRESHOLD, measure_cell
from repro.core.chunkstream import (
    DEFAULT_CHUNK_MOVES,
    chunks_to_schedule,
    rechunk,
)
from repro.core.schedule import Move
from repro.core.strategy import available_strategies, get_strategy, set_active_cache
from repro.fastpath import (
    CompiledSchedule,
    ScheduleCache,
    batch_verify,
    batch_verify_chunks,
    measure_chunks,
    measure_schedule,
)
from repro.obs.trace import Tracer, set_active_tracer
from repro.topology.hypercube import Hypercube

ALL_STRATEGIES = sorted(available_strategies())

#: chunk sizes exercising every boundary shape: single-move chunks, a
#: prime (misaligned with every power-of-two time unit), a power of two,
#: and larger-than-the-whole-schedule (one chunk, immediately final).
CHUNK_SIZES = (1, 7, 64, 10**9)

QUICK = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


def no_moves_allowed(monkeypatch):
    """Make any ``Move`` construction fail the test."""

    def boom(self):
        raise AssertionError("columnar warm path materialized a Move")

    monkeypatch.setattr(Move, "__post_init__", boom)


# --------------------------------------------------------------------- #
# chunked == monolithic, at every chunk size
# --------------------------------------------------------------------- #


class TestChunkedEquivalence:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("chunk_moves", CHUNK_SIZES)
    def test_bytes_identical(self, name, chunk_moves):
        strategy = get_strategy(name)
        cube = Hypercube(5)
        mono = CompiledSchedule.from_schedule(strategy.generate(cube))
        chunked = CompiledSchedule.from_chunks(
            strategy.generate_chunks(cube, chunk_moves)
        )
        assert chunked.to_bytes() == mono.to_bytes()

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("chunk_moves", CHUNK_SIZES)
    def test_verdict_identical(self, name, chunk_moves):
        strategy = get_strategy(name)
        cube = Hypercube(4)
        classic = batch_verify(CompiledSchedule.from_schedule(strategy.generate(cube)))
        streamed = batch_verify_chunks(strategy.generate_chunks(cube, chunk_moves))
        assert streamed == classic
        assert streamed.ok

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("chunk_moves", CHUNK_SIZES)
    def test_measure_identical(self, name, chunk_moves):
        strategy = get_strategy(name)
        cube = Hypercube(4)
        assert measure_chunks(
            strategy.generate_chunks(cube, chunk_moves)
        ) == measure_schedule(strategy.generate(cube))

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_schedule_round_trip_at_d9(self, name):
        strategy = get_strategy(name)
        cube = Hypercube(9)
        assert chunks_to_schedule(strategy.generate_chunks(cube, 1009)) == strategy.generate(cube)

    @QUICK
    @given(
        chunk_moves=st.integers(min_value=1, max_value=5000),
        name=st.sampled_from(ALL_STRATEGIES),
        d=st.integers(min_value=0, max_value=6),
    )
    def test_random_chunk_sizes(self, chunk_moves, name, d):
        strategy = get_strategy(name)
        cube = Hypercube(d)
        mono = CompiledSchedule.from_schedule(strategy.generate(cube))
        chunked = CompiledSchedule.from_chunks(
            strategy.generate_chunks(cube, chunk_moves)
        )
        assert chunked.to_bytes() == mono.to_bytes()
        assert batch_verify_chunks(
            strategy.generate_chunks(cube, chunk_moves)
        ) == batch_verify(mono)

    @QUICK
    @given(
        source=st.integers(min_value=1, max_value=300),
        target=st.integers(min_value=1, max_value=300),
    )
    def test_rechunk_is_pure_column_surgery(self, source, target):
        strategy = get_strategy("clean")
        cube = Hypercube(5)
        mono = CompiledSchedule.from_schedule(strategy.generate(cube))
        rechunked = CompiledSchedule.from_chunks(
            rechunk(strategy.generate_chunks(cube, source), target)
        )
        assert rechunked.to_bytes() == mono.to_bytes()


# --------------------------------------------------------------------- #
# bounded memory
# --------------------------------------------------------------------- #


class TestBoundedMemory:
    def test_streaming_verify_peak_is_o_chunk_at_d14(self):
        """A native streaming producer + the chunk verifier must never
        hold the move plane: peak traced memory stays within a few
        chunks + the O(n) node tables, far below the materialized
        schedule (~10^5 Move objects at d=14)."""
        strategy = get_strategy("clean")
        cube = Hypercube(14)
        chunk_moves = 4096
        tracemalloc.start()
        try:
            report = batch_verify_chunks(strategy.generate_chunks(cube, chunk_moves))
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert report.ok
        # the move plane alone would be ≥ total_moves Move objects; a
        # Move dataclass costs well over 100 bytes, so materializing
        # would blow far past this ceiling.
        assert report.total_moves > 100_000
        ceiling = 24 * chunk_moves * 6 * 8 + 64 * cube.n + 8 * 2**20
        assert peak < ceiling, f"peak {peak} exceeds O(chunk + n) ceiling {ceiling}"

    def test_numpy_packed_plane_ceiling_at_d16(self):
        """Regression pin for the packed-plane backend's node tables.

        PR 9 showed the O(n) per-node tables — not the one-chunk stream
        window — dominate the streaming verifier's peak from d≈16 up.
        The ``numpy`` backend packs them into flat int64 tables and
        ``uint64`` bit-planes; this pins that ceiling so a future change
        quietly reintroducing boxed per-node state fails loudly.
        Generation runs untraced (tracemalloc multiplies the pure-Python
        producer's cost ~7x and its allocations are not under test).
        """
        from repro.fastpath import numpy_available

        if not numpy_available():
            pytest.skip("numpy backend unavailable")
        strategy = get_strategy("clean")
        cube = Hypercube(16)
        chunk_moves = 4096
        chunks = list(strategy.generate_chunks(cube, chunk_moves))
        tracemalloc.start()
        try:
            report = batch_verify_chunks(iter(chunks), backend="numpy")
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert report.ok
        assert report.total_moves > 800_000
        # flat tables + packed planes are a handful of 8-byte words per
        # node; a few chunk windows of six int64 columns; fixed slack.
        ceiling = 8 * 8 * cube.n + 4 * chunk_moves * 6 * 8 + 8 * 2**20
        assert peak < ceiling, f"peak {peak} exceeds packed-plane ceiling {ceiling}"

    def test_materialized_baseline_exceeds_streaming_peak(self):
        """Sanity for the ceiling above: actually materializing the d=12
        schedule costs more than the whole streaming verify at d=12."""
        strategy = get_strategy("clean")
        tracemalloc.start()
        try:
            strategy.generate(Hypercube(12))
            _, mono_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        tracemalloc.start()
        try:
            batch_verify_chunks(strategy.generate_chunks(Hypercube(12), 1024))
            _, stream_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert stream_peak < mono_peak / 4


# --------------------------------------------------------------------- #
# warm-path materialization
# --------------------------------------------------------------------- #


class TestWarmPathNoMoves:
    def test_compiled_for_warm_hit_builds_no_moves(self, tmp_path, monkeypatch):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("visibility")
        cache.compiled_for(strategy, 4)  # cold: generates, stores
        no_moves_allowed(monkeypatch)
        compiled = cache.compiled_for(strategy, 4)  # warm: bytes -> columns
        assert cache.stats.hits == 1
        assert measure_schedule(compiled)["moves"] == compiled.total_moves
        assert batch_verify(compiled).ok

    def test_stream_chunks_warm_hit_builds_no_moves(self, tmp_path, monkeypatch):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("clean")
        for _ in cache.stream_chunks(strategy, 4, chunk_moves=32):
            pass  # cold: stream-to-disk
        no_moves_allowed(monkeypatch)
        report = batch_verify_chunks(cache.stream_chunks(strategy, 4, chunk_moves=32))
        assert report.ok
        assert cache.stats.hits == 1 and cache.stats.chunk_hits > 0

    def test_schedule_for_does_materialize(self, tmp_path, monkeypatch):
        """The probe is real: the decompiling accessor must trip it."""
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("clean")
        cache.compiled_for(strategy, 3)
        no_moves_allowed(monkeypatch)
        with pytest.raises(AssertionError, match="materialized a Move"):
            cache.schedule_for(strategy, 3)


# --------------------------------------------------------------------- #
# traced streaming runs
# --------------------------------------------------------------------- #


class TestTracedStreamingRun:
    def test_run_chunks_span_reports_from_aggregates(self, monkeypatch):
        strategy = get_strategy("clean")
        tracer = Tracer(run_id="t-stream")
        previous = set_active_tracer(tracer)
        try:
            report = batch_verify_chunks(strategy.run_chunks(4, chunk_moves=16))
        finally:
            set_active_tracer(previous)
        assert report.ok
        spans = [s for s in tracer.spans if s.name == "strategy.run_chunks"]
        assert len(spans) == 1
        span = spans[0]
        assert span.status == "ok"
        assert span.attrs["moves"] == report.total_moves
        assert span.attrs["chunk_moves"] == 16

    def test_traced_warm_streaming_run_stays_columnar(self, tmp_path, monkeypatch):
        """Tracing a warm streaming run must not force materialization:
        the span reads the final chunk's aggregate block, never moves."""
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("visibility")
        previous_cache = set_active_cache(cache)
        try:
            for _ in strategy.run_chunks(4, chunk_moves=64):
                pass  # cold pass populates the chunked blob
            no_moves_allowed(monkeypatch)
            tracer = Tracer(run_id="t-warm")
            cache.bind_tracer(tracer)
            previous_tracer = set_active_tracer(tracer)
            try:
                report = batch_verify_chunks(strategy.run_chunks(4, chunk_moves=64))
            finally:
                set_active_tracer(previous_tracer)
        finally:
            set_active_cache(previous_cache)
        assert report.ok
        names = [s.name for s in tracer.spans]
        assert "strategy.run_chunks" in names
        assert "fastpath.cache.stream" in names
        assert cache.stats.chunk_hits > 0


# --------------------------------------------------------------------- #
# chunked cache drills
# --------------------------------------------------------------------- #


class TestChunkedCache:
    def warm(self, cache, strategy, d, chunk_moves=32):
        return list(cache.stream_chunks(strategy, d, chunk_moves=chunk_moves))

    def test_cold_then_warm_counters_and_bytes(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("cloning")
        cold = self.warm(cache, strategy, 4)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        assert cache.stats.chunk_stores == len(cold)
        fp = cache.fingerprint_of(strategy, 4)
        assert cache.chunk_path_for(fp).exists()
        assert not cache.path_for(fp).exists()  # one blob per cell
        warm = self.warm(cache, strategy, 4)
        assert cache.stats.hits == 1
        assert cache.stats.chunk_hits == len(warm)
        assert CompiledSchedule.from_chunks(iter(warm)).to_bytes() == (
            CompiledSchedule.from_chunks(iter(cold)).to_bytes()
        )

    def test_warm_rechunk_serves_any_size(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("clean")
        self.warm(cache, strategy, 4, chunk_moves=64)
        resliced = self.warm(cache, strategy, 4, chunk_moves=17)
        assert all(len(c) == 17 for c in resliced[:-1])
        assert CompiledSchedule.from_chunks(iter(resliced)).to_bytes() == (
            CompiledSchedule.from_schedule(strategy.generate(Hypercube(4))).to_bytes()
        )

    def test_corrupt_chunk_splices_regeneration(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("clean")
        baseline = CompiledSchedule.from_chunks(
            iter(self.warm(cache, strategy, 5, chunk_moves=16))
        ).to_bytes()
        path = cache.chunk_path_for(cache.fingerprint_of(strategy, 5))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        spliced = self.warm(cache, strategy, 5, chunk_moves=16)
        assert cache.stats.corrupt == 1
        assert CompiledSchedule.from_chunks(iter(spliced)).to_bytes() == baseline
        # the regenerated entry is republished and clean again
        self.warm(cache, strategy, 5, chunk_moves=16)
        assert cache.stats.corrupt == 1

    def test_v1_entry_serves_chunk_stream(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("visibility")
        fp = cache.fingerprint_of(strategy, 4)
        compiled = CompiledSchedule.from_schedule(strategy.run(4))
        cache.store(fp, compiled)  # classic monolithic blob
        chunks = self.warm(cache, strategy, 4, chunk_moves=16)
        assert cache.stats.hits == 1 and cache.stats.chunk_hits == len(chunks)
        assert CompiledSchedule.from_chunks(iter(chunks)).to_bytes() == compiled.to_bytes()

    def test_v2_entry_serves_schedule_for(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("clean")
        self.warm(cache, strategy, 4)  # publishes only the chunked layout
        assert cache.schedule_for(strategy, 4) == strategy.generate(Hypercube(4))
        assert cache.stats.hits == 1

    def test_abandoned_cold_stream_publishes_nothing(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("clean")
        stream = cache.stream_chunks(strategy, 5, chunk_moves=8)
        next(stream)
        stream.close()  # consumer walks away mid-stream
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".*.tmp")) == []
        assert cache.info()["chunked_entries"] == 0
        # a fresh consumer regenerates from scratch, cleanly
        report = batch_verify_chunks(cache.stream_chunks(strategy, 5, chunk_moves=8))
        assert report.ok
        assert cache.info()["chunked_entries"] == 1

    def test_info_counts_both_layouts(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        cache.schedule_for(get_strategy("clean"), 3)  # v1
        self.warm(cache, get_strategy("visibility"), 3)  # v2
        info = cache.info()
        assert info["entries"] == 2 and info["chunked_entries"] == 1
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0

    def test_metrics_mirror_chunk_counters(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cache = ScheduleCache(tmp_path)
        cache.bind_metrics(registry)
        cold = self.warm(cache, get_strategy("clean"), 4)
        warm = self.warm(cache, get_strategy("clean"), 4)
        counters = registry.snapshot()["counters"]
        assert counters["fastpath.cache.chunk_stores"] == len(cold)
        assert counters["fastpath.cache.chunk_hits"] == len(warm)


# --------------------------------------------------------------------- #
# measure_cell streaming parity
# --------------------------------------------------------------------- #


class TestStreamingMeasureCell:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_streaming_values_match_classic(self, name):
        classic, _, _ = measure_cell(name, 4, stream=False)
        streamed, _, _ = measure_cell(name, 4, stream=True, chunk_moves=32)
        assert streamed == classic

    def test_streaming_cache_provenance(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        _, _, cold = measure_cell("clean", 4, cache=cache, stream=True, chunk_moves=32)
        assert cold["source"] == "generated"
        _, _, warm = measure_cell("clean", 4, cache=cache, stream=True, chunk_moves=32)
        assert warm["source"] == "cache"
        assert warm["fingerprint"] == cold["fingerprint"]
        assert cache.stats.chunk_hits > 0

    def test_threshold_is_the_default_switch(self):
        assert STREAM_DIMENSION_THRESHOLD == 16
        assert DEFAULT_CHUNK_MOVES == 65536

    def test_streaming_verification_failure_raises(self, monkeypatch):
        from repro.errors import ReproError

        strategy = get_strategy("clean")
        tampered = strategy.generate(Hypercube(3))
        half = tampered.moves[: len(tampered.moves) // 2]
        broken = type(tampered)(
            dimension=3,
            strategy=tampered.strategy,
            moves=half,
            team_size=tampered.team_size,
        )
        monkeypatch.setattr(type(strategy), "generate", lambda self, cube: broken)
        # force the materialize-then-chunk fallback so the tampered
        # generate() is what feeds the stream
        monkeypatch.setattr(type(strategy), "expected_team_size", lambda self, d: None)
        with pytest.raises(ReproError, match="verification"):
            measure_cell("clean", 3, stream=True, chunk_moves=8)
