"""Stateful fuzzing of the whiteboard against a model dictionary.

Drives a :class:`Whiteboard` with random writes/updates/deletes while
mirroring every operation in a plain dict; the board must agree with the
model at every step, and the bit accounting must track the model's
estimated size (never undercount, peak never decreases).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.sim.whiteboard import Whiteboard, estimate_bits

KEYS = st.sampled_from(["count", "idle", "order", "done", "arrivals", "x"])
VALUES = st.one_of(
    st.integers(min_value=-(2**32), max_value=2**32),
    st.booleans(),
    st.text(max_size=8),
    st.none(),
    st.lists(st.integers(min_value=0, max_value=255), max_size=4),
)


class WhiteboardMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.board = Whiteboard(node=0, degree=3)
        self.model = {}
        self.prev_peak = 0

    @rule(key=KEYS, value=VALUES)
    def write(self, key, value):
        self.board.write(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.board.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS, bump=st.integers(min_value=-3, max_value=3))
    def update_counter(self, key, bump):
        def as_counter(value):
            return value if isinstance(value, int) and not isinstance(value, bool) else 0

        def mutate(data):
            data[key] = as_counter(data.get(key)) + bump
            return data[key]

        self.model[key] = as_counter(self.model.get(key)) + bump
        result = self.board.update(mutate)
        assert result == self.model[key]

    @rule(key=KEYS)
    def read_agrees(self, key):
        assert self.board.read(key) == self.model.get(key)

    @invariant()
    def full_read_agrees(self):
        if not hasattr(self, "board"):
            return
        assert self.board.read() == self.model

    @invariant()
    def bit_accounting_tracks_model(self):
        if not hasattr(self, "board"):
            return
        expected = sum(
            estimate_bits(k) + estimate_bits(v) for k, v in self.model.items()
        )
        assert self.board.used_bits() == expected

    @invariant()
    def peak_is_monotone(self):
        if not hasattr(self, "board"):
            return
        assert self.board.peak_bits >= self.prev_peak
        assert self.board.peak_bits >= self.board.used_bits()
        self.prev_peak = self.board.peak_bits


WhiteboardMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestWhiteboardMachine = WhiteboardMachine.TestCase
