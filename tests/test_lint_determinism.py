"""Tests for the interprocedural determinism pass (RPR300–RPR330).

Covers the call graph (entry-point detection, reachability through
helpers, re-export chasing) and each hazard family with both a catching
and a passing case — the rules must flag reachable nondeterminism and
stay silent on seeded/sorted/unreachable equivalents.
"""

import ast

from repro.lint import analyze_source
from repro.lint.callgraph import build_program_graph, module_name_for
from repro.lint.determinism import check_determinism
from pathlib import Path

STRATEGY_PRELUDE = (
    "from repro.core.strategy import Strategy\n"
)


def _check(sources):
    """Run the whole-program pass over ``{path: source}``."""
    trees = {path: ast.parse(text, filename=path) for path, text in sources.items()}
    return check_determinism(build_program_graph(trees))


def _codes(sources):
    return [f.code for f in _check(sources)]


class TestEntryPoints:
    def test_strategy_generate_is_a_root(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return random.random()\n"
        )
        assert _codes({"s.py": src}) == ["RPR300"]

    def test_search_class_is_a_root(self):
        src = (
            "import time\n"
            "class FrontierSearch:\n"
            "    def search(self, graph):\n"
            "        return time.time()\n"
        )
        assert _codes({"s.py": src}) == ["RPR310"]

    def test_registered_task_is_a_root(self):
        src = (
            "import os\n"
            "from repro.exec.jobs import register_task\n"
            "@register_task('cell')\n"
            "def sweep(payload):\n"
            "    return os.getenv('KNOB')\n"
        )
        assert _codes({"t.py": src}) == ["RPR320"]

    def test_plain_function_is_not_a_root(self):
        src = "import random\ndef helper():\n    return random.random()\n"
        assert _codes({"h.py": src}) == []

    def test_no_entry_points_means_no_findings(self):
        src = "import time\nCONST = 1\ndef util():\n    return time.time()\n"
        assert _codes({"u.py": src}) == []


class TestReachability:
    def test_hazard_through_local_helper(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return jitter()\n"
        )
        findings = _check({"s.py": src})
        assert [f.code for f in findings] == ["RPR300"]
        assert findings[0].symbol == "jitter"
        assert "S.generate" in findings[0].message

    def test_hazard_in_unreachable_helper_is_silent(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "def unused():\n"
            "    return random.random()\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return []\n"
        )
        assert _codes({"s.py": src}) == []

    def test_cross_module_helper_edge(self):
        helper = "import random\ndef jitter():\n    return random.random()\n"
        strat = STRATEGY_PRELUDE + (
            "from helpers.util import jitter\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return jitter()\n"
        )
        findings = _check({"helpers/util.py": helper, "strat/s.py": strat})
        assert [f.code for f in findings] == ["RPR300"]
        assert findings[0].path == "helpers/util.py"

    def test_method_edge_through_constructed_local(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "class Sampler:\n"
            "    def draw(self):\n"
            "        return random.random()\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        sampler = Sampler()\n"
            "        return sampler.draw()\n"
        )
        assert _codes({"s.py": src}) == ["RPR300"]

    def test_self_method_edge(self):
        src = STRATEGY_PRELUDE + (
            "import time\n"
            "class S(Strategy):\n"
            "    def _stamp(self):\n"
            "        return time.time()\n"
            "    def generate(self, graph):\n"
            "        return self._stamp()\n"
        )
        assert _codes({"s.py": src}) == ["RPR310"]


class TestRngRule:
    def test_seeded_random_is_clean(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "class S(Strategy):\n"
            "    def generate(self, graph, seed=0):\n"
            "        rng = random.Random(seed)\n"
            "        return rng.random()\n"
        )
        assert _codes({"s.py": src}) == []

    def test_unseeded_random_instance_flagged(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        rng = random.Random()\n"
            "        return rng.random()\n"
        )
        assert _codes({"s.py": src}) == ["RPR300"]

    def test_from_import_alias_flagged(self):
        src = STRATEGY_PRELUDE + (
            "from random import shuffle as mix\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        order = [1, 2]\n"
            "        mix(order)\n"
            "        return order\n"
        )
        assert _codes({"s.py": src}) == ["RPR300"]

    def test_system_random_flagged_even_with_args(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return random.SystemRandom().random()\n"
        )
        assert "RPR300" in _codes({"s.py": src})


class TestClockRule:
    def test_perf_counter_is_exempt(self):
        # timing a computation is fine; stamping content is not
        src = STRATEGY_PRELUDE + (
            "import time\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        t0 = time.perf_counter()\n"
            "        return [t0 - time.perf_counter()]\n"
        )
        assert _codes({"s.py": src}) == []

    def test_datetime_now_flagged(self):
        src = STRATEGY_PRELUDE + (
            "from datetime import datetime\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return [datetime.now()]\n"
        )
        assert _codes({"s.py": src}) == ["RPR310"]


class TestEnvRule:
    def test_environ_subscript_flagged(self):
        src = STRATEGY_PRELUDE + (
            "import os\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return [os.environ['KNOB']]\n"
        )
        assert _codes({"s.py": src}) == ["RPR320"]

    def test_environ_write_is_not_a_read(self):
        src = STRATEGY_PRELUDE + (
            "import os\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        os.environ['KNOB'] = 'x'\n"
            "        return []\n"
        )
        assert _codes({"s.py": src}) == []


class TestOrderingRule:
    def test_sorted_set_is_clean(self):
        src = STRATEGY_PRELUDE + (
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        pending = {1, 2, 3}\n"
            "        return [x for x in sorted(pending)]\n"
        )
        assert _codes({"s.py": src}) == []

    def test_for_over_set_literal_flagged(self):
        src = STRATEGY_PRELUDE + (
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        out = []\n"
            "        for x in {1, 2, 3}:\n"
            "            out.append(x)\n"
            "        return out\n"
        )
        assert _codes({"s.py": src}) == ["RPR330"]

    def test_sort_key_id_flagged(self):
        src = STRATEGY_PRELUDE + (
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        items = [object(), object()]\n"
            "        items.sort(key=id)\n"
            "        return items\n"
        )
        assert _codes({"s.py": src}) == ["RPR330"]


class TestSingleModuleEntry:
    def test_analyze_source_runs_the_pass_on_one_module(self):
        src = STRATEGY_PRELUDE + (
            "import random\n"
            "class S(Strategy):\n"
            "    def generate(self, graph):\n"
            "        return random.random()\n"
        )
        assert [f.code for f in analyze_source(src, "strategy.py")] == ["RPR300"]


class TestModuleNames:
    def test_repro_package_paths_get_import_names(self):
        assert module_name_for(Path("src/repro/core/clean.py")) == "repro.core.clean"
        assert module_name_for(Path("src/repro/fastpath/__init__.py")) == "repro.fastpath"

    def test_non_package_paths_stay_unique_per_directory(self):
        assert module_name_for(Path("benchmarks/bench_lint.py")) == "benchmarks.bench_lint"
