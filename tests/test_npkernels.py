"""Backend parity tests for the NumPy kernel backend.

The ``numpy`` backend's one contract is *byte-identity*: same verdicts,
same error indices and messages, same batch statistics as the pure
kernels it accelerates.  Four layers of evidence:

* **plane primitives** — pack/shift/spread/translate/popcount/connect
  against brute-force set arithmetic on node lists;
* **vectorized RNG** — :class:`VectorMT19937` row-for-row against
  CPython's ``random.Random`` across twist boundaries, block rejection
  windows and the array-seeding paths;
* **verifier parity** — clean and deliberately corrupted schedules,
  monolithic and chunked at randomized chunk sizes, all strategies up
  to d=9: reports compare equal field-for-field;
* **batch-engine parity** — ``run_batch`` payloads and
  ``BatchResult.merge`` statistics shard-for-shard and merged-vs-merged
  (serial-vs-merged counters differ *in the pure path too* — each shard
  rebuilds its timelines — so that comparison would test the sharding,
  not the backend).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.strategy import available_strategies, get_strategy
from repro.errors import ScheduleError
from repro.fastpath import (
    BACKEND_ENV,
    CompiledSchedule,
    batch_verify,
    batch_verify_chunks,
    numpy_available,
    resolve_backend,
)
from repro.fastpath.batchsim import BatchResult, BatchScenarioSpec, run_batch
from repro.topology.hypercube import Hypercube

np = pytest.importorskip("numpy")

import repro.fastpath.npkernels as npk  # noqa: E402

ALL_STRATEGIES = sorted(available_strategies())

QUICK = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_COMPILED_CACHE = {}


def compiled_for(name: str, d: int) -> CompiledSchedule:
    """Memoized schedules so hypothesis reruns don't regenerate."""
    key = (name, d)
    if key not in _COMPILED_CACHE:
        _COMPILED_CACHE[key] = CompiledSchedule.from_schedule(
            get_strategy(name).generate(Hypercube(d))
        )
    return _COMPILED_CACHE[key]


# --------------------------------------------------------------------- #
# backend resolution
# --------------------------------------------------------------------- #


class TestResolveBackend:
    def test_explicit_choices(self):
        assert resolve_backend("pure") == "pure"
        assert resolve_backend("numpy") == "numpy"
        assert resolve_backend("auto") == "numpy"  # numpy importable here

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "pure")
        assert resolve_backend(None) == "pure"
        monkeypatch.setenv(BACKEND_ENV, "NumPy")  # case-insensitive
        assert resolve_backend(None) == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend("pure") == "pure"

    def test_unknown_backend_raises(self):
        with pytest.raises(ScheduleError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_numpy_available(self):
        assert numpy_available()


# --------------------------------------------------------------------- #
# packed bit-plane primitives vs. brute-force set arithmetic
# --------------------------------------------------------------------- #


node_sets = st.integers(min_value=2, max_value=8).flatmap(
    lambda d: st.tuples(
        st.just(d),
        st.lists(
            st.integers(min_value=0, max_value=(1 << d) - 1),
            unique=True,
            max_size=1 << d,
        ),
    )
)


class TestPlanePrimitives:
    @QUICK
    @given(case=node_sets)
    def test_pack_unpack_roundtrip(self, case):
        d, nodes = case
        n = 1 << d
        plane = npk.pack_nodes(np.array(nodes, dtype=np.int64), n)
        dense = npk.unpack_plane(plane, n)
        assert sorted(np.nonzero(dense)[0].tolist()) == sorted(nodes)
        assert npk.plane_popcount(plane) == len(nodes)

    @QUICK
    @given(case=node_sets, p=st.integers(min_value=0, max_value=7))
    def test_shift_dim_is_xor_by_single_bit(self, case, p):
        d, nodes = case
        if p >= d:
            p %= d
        n = 1 << d
        plane = npk.pack_nodes(np.array(nodes, dtype=np.int64), n)
        shifted = npk.plane_shift_dim(plane, p)
        expected = sorted(v ^ (1 << p) for v in nodes)
        assert sorted(np.nonzero(npk.unpack_plane(shifted, n))[0].tolist()) == expected

    @QUICK
    @given(case=node_sets, xor=st.integers(min_value=0, max_value=255))
    def test_translate_is_xor_automorphism(self, case, xor):
        d, nodes = case
        n = 1 << d
        xor &= n - 1
        plane = npk.pack_nodes(np.array(nodes, dtype=np.int64), n)
        moved = npk.plane_translate(plane, xor, d)
        expected = sorted(v ^ xor for v in nodes)
        assert sorted(np.nonzero(npk.unpack_plane(moved, n))[0].tolist()) == expected

    @QUICK
    @given(case=node_sets)
    def test_spread_is_neighbourhood_union(self, case):
        d, nodes = case
        n = 1 << d
        plane = npk.pack_nodes(np.array(nodes, dtype=np.int64), n)
        spread = npk.plane_spread(plane, d)
        expected = sorted({v ^ (1 << p) for v in nodes for p in range(d)})
        assert sorted(np.nonzero(npk.unpack_plane(spread, n))[0].tolist()) == expected

    @QUICK
    @given(case=node_sets, start=st.integers(min_value=0, max_value=255))
    def test_connected_matches_bfs(self, case, start):
        d, nodes = case
        n = 1 << d
        start &= n - 1
        plane = npk.pack_nodes(np.array(nodes, dtype=np.int64), n)
        expected = True
        if nodes:
            seen = {nodes[0]}
            frontier = [nodes[0]]
            members = set(nodes)
            while frontier:
                frontier = [
                    w
                    for v in frontier
                    for p in range(d)
                    if (w := v ^ (1 << p)) in members and w not in seen
                    and not seen.add(w)
                ]
            expected = seen == members
        assert npk.plane_connected(plane, d, start) == expected

    @QUICK
    @given(
        d=st.integers(min_value=2, max_value=8),
        masks=st.lists(st.integers(min_value=0), min_size=1, max_size=6),
    )
    def test_mask_matrix_roundtrip(self, d, masks):
        n = 1 << d
        masks = [m & ((1 << n) - 1) for m in masks]
        matrix = npk.mask_list_to_matrix(masks, n)
        assert npk.matrix_to_mask_list(matrix) == masks


# --------------------------------------------------------------------- #
# VectorMT19937 row-for-row against random.Random
# --------------------------------------------------------------------- #


class TestVectorMT19937:
    @QUICK
    @given(
        seeds=st.lists(
            st.integers(min_value=-(2**70), max_value=2**70),
            min_size=1,
            max_size=5,
        ),
        rounds=st.integers(min_value=1, max_value=30),
    )
    def test_mixed_draws_match_cpython(self, seeds, rounds):
        vmt = npk.VectorMT19937(seeds)
        refs = [random.Random(s) for s in seeds]
        ops = random.Random(rounds * 1000 + len(seeds))
        for _ in range(rounds):
            op = ops.randrange(4)
            if op == 0:
                got = vmt.getrandbits32()
                want = [r.getrandbits(32) for r in refs]
            elif op == 1:
                got = vmt.getrandbits64()
                want = [r.getrandbits(64) for r in refs]
            elif op == 2:
                width = ops.choice([2, 3, 10, 777])
                got = vmt.randbelow(width)
                want = [r.randrange(width) for r in refs]
            else:
                count = ops.randrange(1, 8)
                got = vmt.randint_matrix(1, 6, count)
                want = [[r.randint(1, 6) for _ in range(count)] for r in refs]
            assert np.asarray(got).tolist() == want

    def test_draws_across_twist_boundary(self):
        """624 words per row: long draws must cross the reload exactly
        like the scalar generator does."""
        seeds = [0, 1, 2005, 2**40 + 7]
        vmt = npk.VectorMT19937(seeds)
        refs = [random.Random(s) for s in seeds]
        for _ in range(3):
            got = vmt.randint_matrix(1, 3, 300)  # ~300+ words per row
            want = [[r.randint(1, 3) for _ in range(300)] for r in refs]
            assert got.tolist() == want

    def test_rejection_divergence(self):
        """``randbelow`` on a non-power-of-two width makes rows consume
        different word counts; later draws must still match per row."""
        seeds = list(range(40))
        vmt = npk.VectorMT19937(seeds)
        refs = [random.Random(s) for s in seeds]
        for width in (3, 5, 6, 1000, 3):
            got = vmt.randbelow(width)
            assert got.tolist() == [r.randrange(width) for r in refs]
        got = vmt.getrandbits64()
        assert got.tolist() == [r.getrandbits(64) for r in refs]


# --------------------------------------------------------------------- #
# verifier parity: verdicts, error indices, error messages
# --------------------------------------------------------------------- #


class TestVerifierParity:
    @QUICK
    @given(
        name=st.sampled_from(ALL_STRATEGIES),
        d=st.integers(min_value=0, max_value=9),
        chunk_moves=st.integers(min_value=1, max_value=5000),
    )
    def test_clean_schedules_all_strategies_d_le_9(self, name, d, chunk_moves):
        compiled = compiled_for(name, d)
        pure = batch_verify(compiled, backend="pure")
        assert batch_verify(compiled, backend="numpy") == pure
        assert (
            batch_verify_chunks(compiled.iter_chunks(chunk_moves), backend="numpy")
            == pure
        )
        assert pure.ok

    @QUICK
    @given(
        name=st.sampled_from(ALL_STRATEGIES),
        d=st.integers(min_value=2, max_value=6),
        data=st.data(),
    )
    def test_corrupted_schedules_same_errors(self, name, d, data):
        """Inject a violation and demand identical outcomes — a failing
        report field-for-field, or the same :class:`ScheduleError` text
        (malformed streams raise rather than report)."""

        def outcome(fn):
            try:
                return ("report", fn())
            except ScheduleError as exc:
                return ("raise", str(exc))

        base = compiled_for(name, d)
        compiled = CompiledSchedule.from_bytes(base.to_bytes())
        total = len(compiled.dsts)
        idx = data.draw(st.integers(min_value=0, max_value=total - 1))
        mode = data.draw(st.sampled_from(["teleport", "time_warp", "self_loop"]))
        if mode == "teleport":
            compiled.dsts[idx] = (compiled.dsts[idx] + 3) % (1 << d)
        elif mode == "time_warp":
            compiled.times[idx] = compiled.times[idx] + 50
        else:
            compiled.dsts[idx] = compiled.srcs[idx]
        pure = outcome(lambda: batch_verify(compiled, backend="pure"))
        fast = outcome(lambda: batch_verify(compiled, backend="numpy"))
        assert fast == pure
        # chunked-vs-monolithic wording differs in the pure path too
        # ("chunk stream goes back in time" vs "move #k ..."), so the
        # chunked comparison is chunked-pure vs chunked-numpy.
        chunk_moves = data.draw(st.integers(min_value=1, max_value=total + 1))
        chunked_pure = outcome(
            lambda: batch_verify_chunks(
                compiled.iter_chunks(chunk_moves), backend="pure"
            )
        )
        chunked_fast = outcome(
            lambda: batch_verify_chunks(
                compiled.iter_chunks(chunk_moves), backend="numpy"
            )
        )
        assert chunked_fast == chunked_pure

    def test_env_selected_backend_same_verdict(self, monkeypatch):
        compiled = compiled_for("visibility", 6)
        monkeypatch.setenv(BACKEND_ENV, "pure")
        pure = batch_verify(compiled)
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert batch_verify(compiled) == pure


# --------------------------------------------------------------------- #
# batch-engine parity: payloads, shards, merge statistics
# --------------------------------------------------------------------- #


def _spec(**overrides) -> BatchScenarioSpec:
    base = dict(
        dimension=6,
        strategy="visibility",
        trials=200,
        intruder="reachable",
        delay="random",
        rotate_homebase=True,
        rng_seed=2005,
    )
    base.update(overrides)
    return BatchScenarioSpec(**base)


class TestBatchEngineParity:
    @pytest.mark.parametrize("delay", ["unit", "random", "adversarial"])
    @pytest.mark.parametrize("rotate", [False, True])
    def test_payload_identity_reachable(self, delay, rotate):
        spec = _spec(delay=delay, rotate_homebase=rotate)
        fast = run_batch(spec, backend="numpy")
        pure = run_batch(spec, backend="pure")
        assert fast.to_payload() == pure.to_payload()
        assert fast.summary() == pure.summary()

    @pytest.mark.parametrize("strategy", ["clean", "visibility"])
    def test_payload_identity_across_strategies(self, strategy):
        spec = _spec(strategy=strategy, trials=120)
        assert (
            run_batch(spec, backend="numpy").to_payload()
            == run_batch(spec, backend="pure").to_payload()
        )

    @QUICK
    @given(
        trials=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**32),
        cut=st.integers(min_value=0, max_value=59),
    )
    def test_sharded_windows_match_pure(self, trials, seed, cut):
        """Shard-for-shard and merged-vs-merged parity.  (Merged-vs-
        serial counters differ in the *pure* path too — each shard
        rebuilds its timelines — so that axis is not a backend
        property.)"""
        spec = _spec(trials=trials, rng_seed=seed)
        cut = min(cut, trials)
        windows = [(0, cut), (cut, trials - cut)]
        fast_parts, pure_parts = [], []
        for start, count in windows:
            if count == 0:
                continue
            fast = run_batch(spec, start=start, count=count, backend="numpy")
            pure = run_batch(spec, start=start, count=count, backend="pure")
            assert fast.to_payload() == pure.to_payload()
            fast_parts.append(fast)
            pure_parts.append(pure)
        merged_fast = BatchResult.merge(fast_parts)
        merged_pure = BatchResult.merge(pure_parts)
        assert merged_fast.to_payload() == merged_pure.to_payload()
        assert merged_fast.summary() == merged_pure.summary()

    def test_env_selected_backend_same_payload(self, monkeypatch):
        spec = _spec(trials=80)
        monkeypatch.setenv(BACKEND_ENV, "pure")
        pure = run_batch(spec)
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert run_batch(spec).to_payload() == pure.to_payload()

    def test_non_reachable_policies_share_the_scalar_path(self):
        """``inert``/walker policies have no vectorized fast path yet:
        the numpy backend must fall through to the scalar engine and
        stay byte-identical by construction."""
        for intruder in ("inert", "walker"):
            spec = _spec(intruder=intruder, trials=60, delay="unit")
            assert (
                run_batch(spec, backend="numpy").to_payload()
                == run_batch(spec, backend="pure").to_payload()
            )
