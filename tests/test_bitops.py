"""Unit tests for the bit-manipulation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bitops import (
    bitstring,
    flip_bit,
    from_bitstring,
    gray_code,
    iter_clear_bits,
    iter_set_bits,
    lowest_set_bit,
    msb_position,
    msb_position_array,
    popcount,
    popcount_array,
    with_bit,
    without_bit,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_powers_of_two(self):
        for i in range(20):
            assert popcount(1 << i) == 1

    def test_all_ones(self):
        for width in range(1, 16):
            assert popcount((1 << width) - 1) == width

    @given(st.integers(min_value=0, max_value=2**40))
    def test_matches_bin_count(self, x):
        assert popcount(x) == bin(x).count("1")


class TestMsbPosition:
    def test_zero_is_zero(self):
        assert msb_position(0) == 0

    def test_one_based(self):
        assert msb_position(1) == 1
        assert msb_position(2) == 2
        assert msb_position(3) == 2
        assert msb_position(4) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            msb_position(-1)

    @given(st.integers(min_value=1, max_value=2**40))
    def test_bounds_value(self, x):
        m = msb_position(x)
        assert 1 << (m - 1) <= x < 1 << m


class TestLowestSetBit:
    def test_zero(self):
        assert lowest_set_bit(0) == 0

    def test_odd_numbers(self):
        for x in (1, 3, 5, 7, 99):
            assert lowest_set_bit(x) == 1

    @given(st.integers(min_value=1, max_value=2**30))
    def test_divides(self, x):
        p = lowest_set_bit(x)
        assert x % (1 << (p - 1)) == 0


class TestBitIteration:
    def test_set_bits_order(self):
        assert list(iter_set_bits(0b10110)) == [1, 2, 4]

    def test_clear_bits(self):
        assert list(iter_clear_bits(0b10110, 5)) == [0, 3]

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_partition(self, x):
        width = 20
        set_bits = set(iter_set_bits(x))
        clear_bits = set(iter_clear_bits(x, width))
        assert set_bits | clear_bits == set(range(width))
        assert not set_bits & clear_bits


class TestBitEdits:
    @given(st.integers(min_value=0, max_value=2**20), st.integers(min_value=0, max_value=19))
    def test_flip_is_involution(self, x, i):
        assert flip_bit(flip_bit(x, i), i) == x

    @given(st.integers(min_value=0, max_value=2**20), st.integers(min_value=0, max_value=19))
    def test_with_without(self, x, i):
        assert (with_bit(x, i) >> i) & 1 == 1
        assert (without_bit(x, i) >> i) & 1 == 0


class TestBitstring:
    def test_paper_convention_position_one_leftmost(self):
        # position 1 (bit index 0) is the LEFTMOST character
        assert bitstring(0b001, 4) == "1000"
        assert bitstring(0b1000, 4) == "0001"

    def test_round_trip(self):
        for x in range(32):
            assert from_bitstring(bitstring(x, 5)) == x

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            bitstring(16, 4)

    def test_bad_string_rejected(self):
        with pytest.raises(ValueError):
            from_bitstring("10a1")
        with pytest.raises(ValueError):
            from_bitstring("")


class TestGrayCode:
    def test_consecutive_differ_in_one_bit(self):
        for i in range(255):
            assert popcount(gray_code(i) ^ gray_code(i + 1)) == 1

    def test_is_permutation(self):
        codes = {gray_code(i) for i in range(256)}
        assert codes == set(range(256))


class TestVectorized:
    def test_popcount_array_matches_scalar(self):
        values = np.arange(1 << 10, dtype=np.uint64)
        vec = popcount_array(values)
        assert all(vec[x] == popcount(x) for x in range(1 << 10))

    def test_msb_array_matches_scalar(self):
        values = np.arange(1 << 10, dtype=np.uint64)
        vec = msb_position_array(values)
        assert all(vec[x] == msb_position(x) for x in range(1 << 10))

    def test_empty_arrays(self):
        assert popcount_array(np.array([], dtype=np.uint64)).size == 0
        assert msb_position_array(np.array([], dtype=np.uint64)).size == 0
