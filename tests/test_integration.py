"""End-to-end integration tests: the whole stack working together.

Each test exercises a realistic scenario crossing several subsystems —
strategy generation, verification, the async engine, the intruder, and the
analysis layer — the way the examples and benches use them.
"""

from collections import Counter

import pytest

from repro import (
    Hypercube,
    RandomDelay,
    available_strategies,
    compute_metrics,
    formulas,
    get_strategy,
    verify_schedule,
)
from repro.core.states import AgentRole


class TestPublicApi:
    def test_quickstart_docstring_example(self):
        schedule = get_strategy("visibility").run(4)
        report = verify_schedule(schedule)
        assert report.ok
        assert (schedule.team_size, schedule.total_moves, schedule.makespan) == (8, 20, 4)

    def test_available_strategies(self):
        names = available_strategies()
        assert {"clean", "visibility", "cloning", "synchronous", "level-sweep"} <= set(names)

    def test_version_and_paper(self):
        import repro

        assert repro.__version__
        assert "IPPS 2005" in repro.__paper__

    def test_all_public_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestFullPipelineAcrossDimensions:
    @pytest.mark.parametrize("d", range(0, 9))
    def test_all_strategies_verified_and_measured(self, d):
        for name in available_strategies():
            schedule = get_strategy(name).run(d)
            report = verify_schedule(schedule)
            assert report.ok, f"{name} d={d}: {report.summary()}"
            metrics = compute_metrics(schedule)
            assert metrics.matches_predictions, metrics.describe()

    def test_paper_summary_table_regenerates(self):
        """The Section 1.3 table, measured end to end for d = 6."""
        d = 6
        measured = {}
        for name in ("clean", "visibility", "cloning", "synchronous"):
            s = get_strategy(name).run(d)
            measured[name] = (s.team_size, s.total_moves, s.makespan)
        assert measured["clean"][0] == formulas.clean_peak_agents(d)
        assert measured["visibility"] == (32, 112, 6)
        assert measured["cloning"] == (32, 63, 6)
        assert measured["synchronous"] == measured["visibility"]


class TestScheduleVsProtocolAgreement:
    """The two execution planes must tell the same story."""

    @pytest.mark.parametrize("d", range(1, 5))
    def test_visibility_planes_agree(self, d):
        from repro.protocols.visibility_protocol import run_visibility_protocol

        plane = get_strategy("visibility").run(d)
        sim = run_visibility_protocol(d, delay=RandomDelay(seed=2024))
        assert sim.ok
        assert sim.total_moves == plane.total_moves
        assert sim.team_size == plane.team_size
        assert sim.trace.move_multiset() == Counter(
            (m.src, m.dst) for m in plane.moves
        )

    @pytest.mark.parametrize("d", range(1, 5))
    def test_clean_planes_agree_on_follower_moves(self, d):
        from repro.protocols.clean_protocol import run_clean_protocol

        plane = get_strategy("clean").run(d)
        sim = run_clean_protocol(d, delay=RandomDelay(seed=7))
        assert sim.ok
        plane_agents = Counter(
            (m.src, m.dst) for m in plane.moves if m.role is AgentRole.AGENT
        )
        sim_followers = Counter(
            (e.data["src"], e.node) for e in sim.trace.moves() if e.agent != 0
        )
        assert sim_followers == plane_agents
        assert sim.team_size == plane.team_size


class TestOpenProblemNumbers:
    """The quantities the paper's conclusion discusses, end to end."""

    def test_agent_growth_rate(self):
        """CLEAN's team grows like n / sqrt(log n) (the paper says
        O(n / log n); the measured exponent pins it down)."""
        from repro.analysis.asymptotics import fit_growth

        dims = list(range(4, 16))
        teams = [formulas.clean_peak_agents(d) for d in dims]
        fit = fit_growth(dims, teams)
        assert fit.exponent_n == pytest.approx(1.0, abs=0.05)
        assert -0.75 < fit.exponent_log < -0.3  # ~ -0.5: 1/sqrt(log n)

    def test_moves_growth_rate(self):
        from repro.analysis.asymptotics import fit_growth

        dims = list(range(3, 10))
        moves = [get_strategy("clean").run(d).total_moves for d in dims]
        fit = fit_growth(dims, moves)
        assert fit.exponent_n == pytest.approx(1.0, abs=0.1)
        assert 0.4 < fit.exponent_log <= 1.3  # O(n log n) family

    def test_visibility_on_small_cubes_is_optimal(self):
        """On H_2 and H_3 the visibility strategy matches the brute-force
        optimum exactly — context for the paper's open lower-bound
        question."""
        from repro.search.optimal import optimal_search_number
        from repro.topology.generic import hypercube_graph

        for d in (1, 2, 3):
            optimal = optimal_search_number(hypercube_graph(d))
            assert get_strategy("visibility").run(d).team_size == optimal


class TestVirusHuntScenario:
    """The examples' narrative, as an automated test."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_walker_hunt(self, seed):
        from repro.protocols.visibility_protocol import visibility_agent
        from repro.sim.engine import Engine

        h = Hypercube(4)
        engine = Engine(
            h,
            [visibility_agent] * formulas.visibility_agents(4),
            delay=RandomDelay(seed=seed),
            visibility=True,
            intruder="walker",
            intruder_seed=seed,
        )
        walker = engine.intruder
        result = engine.run()
        assert result.ok
        assert walker.captured
        assert walker.trajectory  # it did try to flee
        # the walker only ever occupied nodes of the hypercube
        assert all(0 <= x < 16 for x in walker.trajectory)


class TestSerialisationPipeline:
    def test_generate_save_load_verify(self, tmp_path):
        schedule = get_strategy("clean").run(4)
        path = tmp_path / "schedule.json"
        path.write_text(schedule.to_json())
        from repro.core.schedule import Schedule

        loaded = Schedule.from_json(path.read_text())
        report = verify_schedule(loaded)
        assert report.ok
        assert compute_metrics(loaded).matches_predictions
