"""The full protocol × delay-regime × intruder matrix, in one sweep.

A compact integration net over every distributed protocol: each cell runs
a real asynchronous simulation and must come back with all invariant bits
set (the synchronous protocol is exercised only under unit delays, its
model's premise).
"""

import pytest

from repro.protocols import (
    run_clean_protocol,
    run_cloning_protocol,
    run_frontier_protocol,
    run_synchronous_protocol,
    run_visibility_protocol,
)
from repro.sim.scheduling import (
    AdversarialSlowestDelay,
    LayeredDelay,
    RandomDelay,
    UnitDelay,
)
from repro.topology.generic import hypercube_graph

DIMENSION = 3

DELAYS = {
    "unit": UnitDelay,
    "random": lambda: RandomDelay(seed=42),
    "stragglers": lambda: AdversarialSlowestDelay(slow_agents=[0, 1], factor=12),
    "slow-hosts": lambda: LayeredDelay({3: 8.0, 5: 8.0}),
}

INTRUDERS = ["reachable", "walker", "walkers", None]

ASYNC_PROTOCOLS = {
    "visibility": lambda **kw: run_visibility_protocol(DIMENSION, **kw),
    "clean": lambda **kw: run_clean_protocol(DIMENSION, **kw),
    "cloning": lambda **kw: run_cloning_protocol(DIMENSION, **kw),
    "frontier": lambda **kw: run_frontier_protocol(
        hypercube_graph(DIMENSION), **kw
    ),
}


@pytest.mark.parametrize("intruder", INTRUDERS, ids=str)
@pytest.mark.parametrize("delay_name", sorted(DELAYS))
@pytest.mark.parametrize("protocol", sorted(ASYNC_PROTOCOLS))
def test_async_protocol_matrix(protocol, delay_name, intruder):
    runner = ASYNC_PROTOCOLS[protocol]
    result = runner(delay=DELAYS[delay_name](), intruder=intruder)
    assert result.ok, f"{protocol}/{delay_name}/{intruder}: {result.summary()}"
    assert result.monotone and result.contiguous and result.all_clean


@pytest.mark.parametrize("intruder", INTRUDERS, ids=str)
def test_synchronous_protocol_matrix(intruder):
    """The synchronous variant, in its own model (unit delays only)."""
    result = run_synchronous_protocol(DIMENSION, intruder=intruder)
    assert result.ok, result.summary()


def test_matrix_move_counts_are_delay_invariant():
    """For the hypercube protocols, the move count is the same in every
    cell of the matrix (the squads are fixed by the tree structure)."""
    for protocol in ("visibility", "cloning"):
        counts = {
            name: ASYNC_PROTOCOLS[protocol](delay=factory(), intruder=None).total_moves
            for name, factory in DELAYS.items()
        }
        assert len(set(counts.values())) == 1, (protocol, counts)
