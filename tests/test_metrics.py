"""Tests for the metrics accounting."""

import pytest

from repro.core.metrics import StrategyMetrics, compute_metrics
from repro.core.strategy import get_strategy


class TestComputeMetrics:
    @pytest.mark.parametrize("name", ["clean", "visibility", "cloning", "synchronous"])
    def test_predictions_met(self, name):
        schedule = get_strategy(name).run(5)
        metrics = compute_metrics(schedule)
        assert metrics.matches_predictions, metrics.describe()

    def test_fields(self):
        schedule = get_strategy("clean").run(4)
        m = compute_metrics(schedule)
        assert m.strategy == "clean"
        assert m.dimension == 4
        assert m.n == 16
        assert m.total_moves == m.agent_moves + m.synchronizer_moves
        assert sum(m.moves_by_kind.values()) == m.total_moves

    def test_as_row(self):
        m = compute_metrics(get_strategy("visibility").run(3))
        row = m.as_row()
        assert row["agents"] == 4
        assert row["steps"] == 3

    def test_describe_mentions_predictions(self):
        m = compute_metrics(get_strategy("visibility").run(4))
        text = m.describe()
        assert "predicted" in text
        assert "H" not in text.split("\n")[0]  # first line names the strategy

    def test_unknown_strategy_has_no_predictions(self):
        from repro.core.schedule import Schedule

        schedule = Schedule(dimension=1, strategy="mystery", team_size=1)
        m = compute_metrics(schedule)
        assert m.predicted_team_size is None
        assert m.matches_predictions  # vacuously

    def test_mismatch_detected(self):
        m = StrategyMetrics(
            strategy="x",
            dimension=2,
            n=4,
            team_size=3,
            total_moves=10,
            agent_moves=10,
            synchronizer_moves=0,
            makespan=5,
            predicted_team_size=2,
        )
        assert not m.matches_predictions
