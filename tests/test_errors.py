"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AgentError,
    CapacityError,
    ContiguityError,
    DeadlockError,
    IncompleteCleaningError,
    InvalidNodeError,
    RecontaminationError,
    ReproError,
    ScheduleError,
    SimulationError,
    TopologyError,
    VerificationError,
    WhiteboardError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            TopologyError,
            ScheduleError,
            VerificationError,
            SimulationError,
            CapacityError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_verification_family(self):
        for exc in (RecontaminationError, ContiguityError, IncompleteCleaningError):
            assert issubclass(exc, VerificationError)

    def test_simulation_family(self):
        for exc in (DeadlockError, WhiteboardError, AgentError):
            assert issubclass(exc, SimulationError)

    def test_invalid_node_message_and_fields(self):
        err = InvalidNodeError(9, 8)
        assert err.node == 9 and err.n == 8
        assert "9" in str(err) and "8" in str(err)
        assert isinstance(err, TopologyError)

    def test_verification_error_context(self):
        err = VerificationError("bad", step=3, node=7)
        assert "step=3" in str(err) and "node=7" in str(err)
        assert err.step == 3 and err.node == 7

    def test_verification_error_without_context(self):
        err = VerificationError("bad")
        assert str(err) == "bad"

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise RecontaminationError("x")
        with pytest.raises(ReproError):
            raise WhiteboardError("y")
