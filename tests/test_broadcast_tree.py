"""Unit tests for the broadcast tree (Section 2, Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube


@pytest.fixture(params=range(1, 8))
def tree(request):
    return BroadcastTree(Hypercube(request.param))


class TestConstruction:
    def test_from_int(self):
        assert BroadcastTree(4).hypercube == Hypercube(4)

    def test_bad_argument(self):
        with pytest.raises(TopologyError):
            BroadcastTree("nope")

    def test_equality(self):
        assert BroadcastTree(3) == BroadcastTree(Hypercube(3))
        assert BroadcastTree(3) != BroadcastTree(4)


class TestParentChild:
    def test_root_has_no_parent(self, tree):
        with pytest.raises(TopologyError):
            tree.parent(0)

    def test_parent_clears_msb(self):
        t = BroadcastTree(5)
        assert t.parent(0b10110) == 0b00110
        assert t.parent(0b00001) == 0

    def test_children_are_bigger_neighbors(self, tree):
        h = tree.hypercube
        for x in h.nodes():
            assert tree.children(x) == h.bigger_neighbors(x)

    def test_parent_child_inverse(self, tree):
        for x in range(1, tree.n):
            assert x in tree.children(tree.parent(x))

    def test_every_nonroot_has_unique_parent(self, tree):
        seen = {}
        for p, c in tree.edges():
            assert c not in seen
            seen[c] = p
        assert len(seen) == tree.n - 1

    def test_edge_count(self, tree):
        assert sum(1 for _ in tree.edges()) == tree.n - 1

    def test_child_types_descend(self, tree):
        for x in range(tree.n):
            kinds = tree.child_types(x)
            k = tree.node_type(x)
            assert kinds == list(range(k - 1, -1, -1))


class TestTypes:
    def test_root_type_is_d(self, tree):
        assert tree.node_type(0) == tree.dimension

    def test_type_plus_msb_is_d(self, tree):
        h = tree.hypercube
        for x in h.nodes():
            assert tree.node_type(x) + h.msb(x) == tree.dimension

    def test_leaves_are_type_zero(self, tree):
        for leaf in tree.leaves():
            assert tree.is_leaf(leaf)
            assert tree.node_type(leaf) == 0
            assert tree.children(leaf) == []

    def test_leaf_count_is_half(self, tree):
        assert len(tree.leaves()) == max(1, tree.n // 2)

    def test_subtree_size_formula(self, tree):
        for x in range(tree.n):
            assert tree.subtree_size(x) == len(tree.subtree_nodes(x))

    def test_subtree_nodes_of_root(self, tree):
        assert sorted(tree.subtree_nodes(0)) == list(range(tree.n))


class TestPaths:
    def test_path_from_root(self, tree):
        for x in range(tree.n):
            path = tree.path_from_root(x)
            assert path[0] == 0 and path[-1] == x
            for p, c in zip(path, path[1:]):
                assert tree.parent(c) == p

    def test_path_to_root_reverses(self, tree):
        for x in range(tree.n):
            assert tree.path_to_root(x) == list(reversed(tree.path_from_root(x)))

    def test_ancestors(self):
        t = BroadcastTree(4)
        assert t.ancestors(0b1010) == [0b0010, 0]
        assert t.ancestors(0) == []

    def test_is_ancestor(self):
        t = BroadcastTree(4)
        assert t.is_ancestor(0b0010, 0b1010)
        assert t.is_ancestor(0, 0b1010)
        assert t.is_ancestor(0b1010, 0b1010)
        assert not t.is_ancestor(0b1000, 0b1010)  # not a bit-prefix
        assert not t.is_ancestor(0b0100, 0b1010)

    @given(st.integers(min_value=1, max_value=7), st.data())
    def test_is_ancestor_matches_paths(self, d, data):
        t = BroadcastTree(d)
        x = data.draw(st.integers(min_value=0, max_value=t.n - 1))
        anc_path = set(t.path_from_root(x))
        for a in range(t.n):
            assert t.is_ancestor(a, x) == (a in anc_path)


class TestTraversals:
    def test_preorder_covers_all(self, tree):
        assert sorted(tree.preorder()) == list(range(tree.n))

    def test_bfs_covers_all_by_level(self, tree):
        order = list(tree.bfs_order())
        assert sorted(order) == list(range(tree.n))
        levels = [tree.depth(x) for x in order]
        assert levels == sorted(levels)

    def test_preorder_parent_before_child(self, tree):
        position = {x: i for i, x in enumerate(tree.preorder())}
        for p, c in tree.edges():
            assert position[p] < position[c]


class TestCensusesAndValidation:
    def test_type_census_matches_formula(self, tree):
        for level in range(tree.dimension + 1):
            assert tree.type_census(level) == tree.type_census_formula(level)

    def test_leaf_census(self, tree):
        for level in range(tree.dimension + 1):
            measured = sum(
                1 for x in tree.hypercube.level_nodes(level) if tree.is_leaf(x)
            )
            assert measured == tree.leaf_count_at_level(level)

    def test_validate_passes(self, tree):
        tree.validate()

    def test_to_networkx_is_tree(self, tree):
        import networkx as nx

        g = tree.to_networkx()
        assert nx.is_arborescence(g)
        assert g.number_of_nodes() == tree.n

    def test_degenerate_d0(self):
        t = BroadcastTree(0)
        assert t.leaves() == [0]
        assert t.node_type(0) == 0
        assert t.is_leaf(0)
