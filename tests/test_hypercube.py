"""Unit tests for the Hypercube topology (Section 2 definitions)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidNodeError, TopologyError
from repro.topology.hypercube import Hypercube

DIMS = st.integers(min_value=0, max_value=8)


class TestShape:
    def test_sizes(self):
        for d in range(9):
            h = Hypercube(d)
            assert h.n == 2**d
            assert len(h) == 2**d
            assert h.num_edges == d * 2 ** (d - 1) if d else h.num_edges == 0

    def test_edge_count_matches_iteration(self):
        for d in range(7):
            h = Hypercube(d)
            assert sum(1 for _ in h.edges()) == h.num_edges

    def test_negative_dimension_rejected(self):
        with pytest.raises(TopologyError):
            Hypercube(-1)

    def test_huge_dimension_rejected(self):
        with pytest.raises(TopologyError):
            Hypercube(31)

    def test_equality_and_hash(self):
        assert Hypercube(3) == Hypercube(3)
        assert Hypercube(3) != Hypercube(4)
        assert hash(Hypercube(3)) == hash(Hypercube(3))

    def test_contains(self):
        h = Hypercube(3)
        assert 0 in h and 7 in h
        assert 8 not in h and -1 not in h and "x" not in h


class TestAdjacency:
    def test_neighbors_differ_in_one_bit(self):
        h = Hypercube(5)
        for x in h.nodes():
            for y in h.neighbors(x):
                diff = x ^ y
                assert diff and diff & (diff - 1) == 0

    def test_degree_is_d(self):
        h = Hypercube(6)
        for x in (0, 13, 63):
            assert len(h.neighbors(x)) == 6

    def test_neighbor_by_port(self):
        h = Hypercube(4)
        assert h.neighbor(0b0000, 1) == 0b0001
        assert h.neighbor(0b0000, 4) == 0b1000
        assert h.neighbor(0b1111, 2) == 0b1101

    def test_port_out_of_range(self):
        h = Hypercube(3)
        with pytest.raises(TopologyError):
            h.neighbor(0, 0)
        with pytest.raises(TopologyError):
            h.neighbor(0, 4)

    def test_edge_label_symmetric(self):
        h = Hypercube(5)
        for x, y in h.edges():
            assert h.edge_label(x, y) == h.edge_label(y, x)

    def test_edge_label_value(self):
        h = Hypercube(4)
        assert h.edge_label(0b0000, 0b0100) == 3

    def test_edge_label_non_edge_rejected(self):
        h = Hypercube(3)
        with pytest.raises(TopologyError):
            h.edge_label(0, 3)
        with pytest.raises(TopologyError):
            h.edge_label(5, 5)

    def test_invalid_node(self):
        h = Hypercube(3)
        with pytest.raises(InvalidNodeError):
            h.neighbors(8)
        with pytest.raises(InvalidNodeError):
            h.check_node(-1)

    @given(DIMS.filter(lambda d: d >= 1), st.data())
    def test_neighbor_relation_symmetric(self, d, data):
        h = Hypercube(d)
        x = data.draw(st.integers(min_value=0, max_value=h.n - 1))
        for y in h.neighbors(x):
            assert x in h.neighbors(y)
            assert h.has_edge(x, y) and h.has_edge(y, x)


class TestLevels:
    def test_level_is_popcount(self):
        h = Hypercube(6)
        assert h.level(0) == 0
        assert h.level(0b111111) == 6
        assert h.level(0b1010) == 2

    def test_level_nodes_partition(self):
        h = Hypercube(5)
        union = []
        for level in range(6):
            nodes = h.level_nodes(level)
            assert len(nodes) == h.level_size(level) == math.comb(5, level)
            assert nodes == sorted(nodes)
            union.extend(nodes)
        assert sorted(union) == list(h.nodes())

    def test_levels_iterator(self):
        h = Hypercube(4)
        levels = list(h.levels())
        assert len(levels) == 5
        assert levels[0] == [0]
        assert levels[4] == [15]

    def test_level_out_of_range(self):
        h = Hypercube(3)
        with pytest.raises(TopologyError):
            h.level_nodes(4)
        with pytest.raises(TopologyError):
            h.level_size(-1)

    def test_level_census_vectorized(self):
        h = Hypercube(7)
        census = h.level_census()
        assert list(census) == [math.comb(7, l) for l in range(8)]


class TestClassesAndNeighbourKinds:
    def test_msb_of_homebase(self):
        assert Hypercube(4).msb(0) == 0

    def test_class_membership(self):
        h = Hypercube(4)
        assert h.class_members(0) == [0]
        assert h.class_members(1) == [1]
        assert h.class_members(2) == [2, 3]
        assert h.class_members(3) == [4, 5, 6, 7]

    def test_classes_partition_nodes(self):
        h = Hypercube(6)
        union = [x for cls in h.classes() for x in cls]
        assert sorted(union) == list(h.nodes())

    def test_class_size_formula(self):
        h = Hypercube(6)
        for i in range(7):
            assert len(h.class_members(i)) == h.class_size(i)

    def test_class_out_of_range(self):
        with pytest.raises(TopologyError):
            Hypercube(3).class_members(4)

    def test_smaller_bigger_partition_neighbors(self):
        h = Hypercube(6)
        for x in h.nodes():
            smaller = h.smaller_neighbors(x)
            bigger = h.bigger_neighbors(x)
            assert sorted(smaller + bigger) == sorted(h.neighbors(x))

    def test_definition_2(self):
        # y smaller iff λ(x,y) <= m(x)
        h = Hypercube(5)
        for x in h.nodes():
            m = h.msb(x)
            for y in h.smaller_neighbors(x):
                assert h.edge_label(x, y) <= m
                assert h.is_smaller_neighbor(x, y)
            for y in h.bigger_neighbors(x):
                assert h.edge_label(x, y) > m
                assert not h.is_smaller_neighbor(x, y)

    def test_bigger_neighbors_increase_level(self):
        h = Hypercube(5)
        for x in h.nodes():
            for y in h.bigger_neighbors(x):
                assert h.level(y) == h.level(x) + 1

    def test_homebase_has_no_smaller_neighbors(self):
        h = Hypercube(5)
        assert h.smaller_neighbors(0) == []
        assert len(h.bigger_neighbors(0)) == 5


class TestMetric:
    def test_distance_is_hamming(self):
        h = Hypercube(5)
        assert h.distance(0b00000, 0b10101) == 3
        assert h.distance(7, 7) == 0

    @given(st.data())
    def test_shortest_path_valid(self, data):
        d = data.draw(st.integers(min_value=1, max_value=7))
        h = Hypercube(d)
        x = data.draw(st.integers(min_value=0, max_value=h.n - 1))
        y = data.draw(st.integers(min_value=0, max_value=h.n - 1))
        path = h.shortest_path(x, y)
        assert path[0] == x and path[-1] == y
        assert len(path) == h.distance(x, y) + 1
        for a, b in zip(path, path[1:]):
            assert h.has_edge(a, b)

    @given(st.data())
    def test_path_via_meet_stays_low(self, data):
        d = data.draw(st.integers(min_value=1, max_value=7))
        h = Hypercube(d)
        x = data.draw(st.integers(min_value=0, max_value=h.n - 1))
        y = data.draw(st.integers(min_value=0, max_value=h.n - 1))
        path = h.path_via_meet(x, y)
        assert path[0] == x and path[-1] == y
        assert len(path) == h.distance(x, y) + 1
        cap = max(h.level(x), h.level(y))
        for node in path:
            assert h.level(node) <= cap
        for a, b in zip(path, path[1:]):
            assert h.has_edge(a, b)

    def test_tree_path_down(self):
        h = Hypercube(4)
        assert h.tree_path_down(0b1010) == [0b0000, 0b0010, 0b1010]
        assert h.tree_path_down(0) == [0]


class TestRendering:
    def test_bitstring_paper_convention(self):
        h = Hypercube(4)
        assert h.bitstring(0b0001) == "1000"  # position 1 leftmost
        assert h.node_from_bitstring("1000") == 1

    def test_bitstring_round_trip(self):
        h = Hypercube(5)
        for x in h.nodes():
            assert h.node_from_bitstring(h.bitstring(x)) == x

    def test_bad_bitstring_length(self):
        with pytest.raises(TopologyError):
            Hypercube(4).node_from_bitstring("101")

    def test_to_networkx(self):
        import networkx as nx

        h = Hypercube(4)
        g = h.to_networkx()
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == 32
        assert nx.is_connected(g)
        # networkx ships its own hypercube for cross-checking
        assert nx.is_isomorphic(g, nx.hypercube_graph(4))


class TestSubcubes:
    def test_fixing_one_position_halves(self):
        h = Hypercube(4)
        sub = h.subcube_nodes([4], 0)
        assert len(sub) == 8
        assert all(not (x >> 3) & 1 for x in sub)

    def test_fix_two_positions(self):
        h = Hypercube(3)
        sub = h.subcube_nodes([1, 3], 0b11)
        assert len(sub) == 2
        for x in sub:
            assert x & 1 and (x >> 2) & 1

    def test_duplicate_positions_rejected(self):
        with pytest.raises(TopologyError):
            Hypercube(3).subcube_nodes([1, 1], 0)

    def test_position_out_of_range(self):
        with pytest.raises(TopologyError):
            Hypercube(3).subcube_nodes([4], 0)
