"""Tests for the cloning and synchronous protocols on the async engine."""

import pytest

from repro.analysis import formulas
from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.sync_protocol import run_synchronous_protocol
from repro.sim.scheduling import AdversarialSlowestDelay, RandomDelay


class TestCloningProtocol:
    @pytest.mark.parametrize("d", range(0, 6))
    def test_section_5_claims(self, d):
        result = run_cloning_protocol(d)
        assert result.ok, result.summary()
        assert result.total_moves == formulas.cloning_moves(d)
        assert result.team_size == formulas.cloning_agents(d)
        assert result.makespan == pytest.approx(formulas.cloning_time_steps(d))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_delays_stay_monotone(self, seed):
        """Clones exist before departures, so a node stays guarded until its
        last leaver atomically guards the final child — under any delays."""
        result = run_cloning_protocol(4, delay=RandomDelay(seed=seed))
        assert result.ok, result.summary()
        assert result.total_moves == formulas.cloning_moves(4)

    def test_adversarial_clone_slowdown(self):
        result = run_cloning_protocol(
            4, delay=AdversarialSlowestDelay(slow_agents=list(range(1, 5)), factor=30)
        )
        assert result.ok

    def test_every_edge_once(self):
        from repro.topology.broadcast_tree import BroadcastTree

        d = 4
        result = run_cloning_protocol(d)
        multiset = result.trace.move_multiset()
        assert set(multiset) == set(BroadcastTree(d).edges())
        assert all(count == 1 for count in multiset.values())

    def test_walker_intruder_caught(self):
        result = run_cloning_protocol(4, intruder="walker")
        assert result.intruder_captured


class TestSynchronousProtocol:
    @pytest.mark.parametrize("d", range(0, 6))
    def test_correct_under_unit_delays(self, d):
        result = run_synchronous_protocol(d)
        assert result.ok, result.summary()
        assert result.total_moves == formulas.visibility_moves_exact(d)
        assert result.makespan == pytest.approx(d)

    def test_matches_visibility_multiset(self):
        from repro.protocols.visibility_protocol import run_visibility_protocol

        d = 4
        sync = run_synchronous_protocol(d).trace.move_multiset()
        vis = run_visibility_protocol(d).trace.move_multiset()
        assert sync == vis

    def test_breaks_without_synchrony(self):
        """The Section 5 observation is *only* for the synchronous model:
        under asynchronous delays the time-triggered rule recontaminates.

        This failure injection demonstrates why the paper needs either the
        synchronizer (Alg. 1) or visibility (Alg. 2) in the async setting.
        Individual lucky seeds can survive, so we require that most random
        schedules break and that each break is a genuine recontamination.
        """
        outcomes = [
            run_synchronous_protocol(4, delay=RandomDelay(seed=s, low=0.5, high=3.0))
            for s in range(8)
        ]
        broken = [r for r in outcomes if not r.ok]
        assert len(broken) >= len(outcomes) // 2
        assert all(not r.monotone for r in broken)

    def test_mild_jitter_may_survive_but_capture_is_flagged_correctly(self):
        """Whatever the outcome under small jitter, the result flags must be
        internally consistent (ok iff all invariant bits hold)."""
        result = run_synchronous_protocol(
            3, delay=RandomDelay(seed=5, low=0.95, high=1.05)
        )
        assert result.ok == (
            result.all_clean
            and result.monotone
            and result.contiguous
            and result.intruder_captured
            and not result.deadlocked
        )
