"""Tests for the shared protocol plumbing (slot mapping, mutators)."""

import pytest

from repro.analysis.formulas import agents_for_type
from repro.core.states import NodeState
from repro.protocols.base import (
    cached_hypercube,
    cached_tree,
    child_for_slot,
    decrement,
    increment,
    smaller_all_safe,
    take_slot,
)


class TestCaches:
    def test_cached_objects_are_shared(self):
        assert cached_hypercube(4) is cached_hypercube(4)
        assert cached_tree(4) is cached_tree(4)
        assert cached_tree(4).hypercube is cached_hypercube(4)


class TestSlotMapping:
    def test_root_slots_cover_all_children_with_right_sizes(self):
        d = 5
        tree = cached_tree(d)
        counts = {}
        total = agents_for_type(d)
        for slot in range(total):
            child = child_for_slot(d, 0, slot)
            counts[child] = counts.get(child, 0) + 1
        assert counts == {
            c: agents_for_type(tree.node_type(c)) for c in tree.children(0)
        }

    def test_slots_are_contiguous_chunks(self):
        d = 4
        seen = []
        for slot in range(agents_for_type(d)):
            seen.append(child_for_slot(d, 0, slot))
        # chunks: same child repeated, largest subtree first
        assert seen == sorted(seen, key=seen.index)  # grouped
        assert seen[0] == 1  # largest child (type T(d-1)) first

    def test_slot_out_of_range(self):
        with pytest.raises(ValueError):
            child_for_slot(3, 0, agents_for_type(3))

    def test_internal_node_slots(self):
        d = 4
        node = 0b0001  # type T(3): children 3, 5, 9 of types 2, 1, 0
        assignments = [child_for_slot(d, node, s) for s in range(4)]
        assert assignments == [3, 3, 5, 9]


class TestMutators:
    def test_increment_decrement(self):
        wb = {}
        assert increment("count")(wb) == 1
        assert increment("count")(wb) == 2
        assert decrement("count")(wb) == 1

    def test_take_slot_sequence(self):
        wb = {}
        taker = take_slot(2)
        assert taker(wb) == 0
        assert taker(wb) == 1
        assert taker(wb) is None  # exhausted

    def test_take_slot_custom_key(self):
        wb = {}
        assert take_slot(1, key="departures")(wb) == 0
        assert wb == {"departures": 1}


class TestSafetyPredicate:
    class _View:
        def __init__(self, states):
            self._states = states

        def neighbor_states(self):
            return self._states

    def test_all_safe(self):
        pred = smaller_all_safe(3, 0b011)  # smaller neighbours: 0b010, 0b001
        view = self._View({1: NodeState.CLEAN, 2: NodeState.GUARDED, 7: NodeState.CONTAMINATED})
        assert pred(view)  # 7 is a bigger neighbour; irrelevant

    def test_contaminated_smaller_blocks(self):
        pred = smaller_all_safe(3, 0b011)
        view = self._View({1: NodeState.CONTAMINATED, 2: NodeState.GUARDED, 7: NodeState.CLEAN})
        assert not pred(view)

    def test_homebase_vacuous(self):
        pred = smaller_all_safe(3, 0)
        assert pred(self._View({1: NodeState.CONTAMINATED, 2: NodeState.CONTAMINATED, 4: NodeState.CONTAMINATED}))
