"""Tests for the classical / non-contiguous search baselines (§1.2)."""

import pytest

from repro.errors import CapacityError
from repro.search.classical import (
    classical_solvable_with,
    node_cleaning_search_number,
    node_cleaning_solvable_with,
    node_search_number,
)
from repro.search.optimal import optimal_search_number
from repro.topology.generic import (
    complete_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)


class TestClassicalEdgeSearch:
    """ns(G) = pathwidth + 1; cross-checked against known values."""

    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(2), 2),
            (path_graph(7), 2),
            (ring_graph(4), 3),
            (ring_graph(7), 3),
            (star_graph(5), 2),
            (complete_graph(3), 3),
            (complete_graph(4), 4),
            # a caterpillar: pathwidth 1
            (tree_graph([0, 0, 1, 1, 2, 2]), 2),
            (hypercube_graph(2), 3),
        ],
    )
    def test_known_node_search_numbers(self, graph, expected):
        assert node_search_number(graph) == expected

    def test_h3_needs_five(self):
        """vs(Q_3) = 4, so ns(Q_3) = 5 — more than the paper's node-cleaning
        optimum of 4: the two models clean different objects."""
        assert node_search_number(hypercube_graph(3)) == 5

    def test_solvable_with_monotone_in_k(self):
        g = ring_graph(5)
        assert not classical_solvable_with(g, 2)
        assert classical_solvable_with(g, 3)
        assert classical_solvable_with(g, 4)

    def test_single_node_graph(self):
        from repro.topology.generic import GraphAdapter

        g = GraphAdapter(1, [])
        assert classical_solvable_with(g, 0)  # no edges: vacuous

    def test_capacity_guard(self):
        import repro.search.classical as mod

        old = mod._STATE_LIMIT
        mod._STATE_LIMIT = 5
        try:
            with pytest.raises(CapacityError):
                node_search_number(ring_graph(5))
        finally:
            mod._STATE_LIMIT = old


class TestFreeNodeCleaning:
    """Placement/removal/slide under the paper's node semantics: a strict
    relaxation of the contiguous model."""

    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(6),
            ring_graph(6),
            star_graph(4),
            hypercube_graph(2),
            hypercube_graph(3),
            tree_graph([0, 0, 1, 1, 2, 2]),
            complete_graph(4),
        ],
    )
    def test_relaxation_lower_bounds_contiguous(self, graph):
        free = node_cleaning_search_number(graph)
        contiguous = optimal_search_number(graph)
        assert free <= contiguous

    def test_path_needs_one(self):
        assert node_cleaning_search_number(path_graph(8)) == 1

    def test_ring_needs_two(self):
        assert node_cleaning_search_number(ring_graph(8)) == 2

    def test_contiguity_costs_on_binary_tree(self):
        """§1.2's claim, quantified: the walking/homebase constraints cost a
        third agent on the 7-node binary tree."""
        g = tree_graph([0, 0, 1, 1, 2, 2])
        assert node_cleaning_search_number(g) == 2
        assert optimal_search_number(g) == 3

    def test_h3_free_equals_contiguous(self):
        """On H_3 the homebase constraint happens to be free of charge."""
        g = hypercube_graph(3)
        assert node_cleaning_search_number(g) == 4 == optimal_search_number(g)

    def test_monotone_in_k(self):
        g = hypercube_graph(2)
        assert not node_cleaning_solvable_with(g, 1)
        assert node_cleaning_solvable_with(g, 2)
        assert node_cleaning_solvable_with(g, 3)


class TestModelOrdering:
    """Sanity relations between the three model numbers on a battery of
    graphs: free-node <= contiguous; all within n."""

    @pytest.mark.parametrize(
        "graph",
        [path_graph(4), ring_graph(5), star_graph(3), hypercube_graph(2)],
    )
    def test_orderings(self, graph):
        ns = node_search_number(graph)
        free = node_cleaning_search_number(graph)
        cont = optimal_search_number(graph)
        assert 1 <= free <= cont <= graph.n
        assert 1 <= ns <= graph.n
