"""Tests for the figure renderings."""

import pytest

from repro.core.strategy import get_strategy
from repro.topology.broadcast_tree import BroadcastTree
from repro.viz.class_render import render_classes
from repro.viz.order_render import render_cleaning_order, render_wave_table
from repro.viz.tree_render import render_broadcast_tree, render_level_table


class TestTreeRender:
    def test_contains_every_node(self):
        text = render_broadcast_tree(4)
        for x in range(16):
            assert f"{x} [" in text

    def test_root_line(self):
        text = render_broadcast_tree(3)
        assert "broadcast tree T(3) of H_3 (8 nodes)" in text
        assert "0 [000] T(3)" in text

    def test_figure_1_dimension(self):
        """Figure 1 is T(6); rendering it lists 64 nodes with their types."""
        text = render_broadcast_tree(6, show_bitstring=False)
        assert text.count("T(0)") == 32  # the leaves
        assert "T(6)" in text  # the root

    def test_size_guard(self):
        with pytest.raises(ValueError):
            render_broadcast_tree(12)

    def test_accepts_tree_object(self):
        assert "T(2)" in render_broadcast_tree(BroadcastTree(2))

    def test_level_table(self):
        text = render_level_table(6)
        lines = text.splitlines()
        assert len(lines) == 8  # header + levels 0..6
        assert "T(6)x1" in lines[1]
        # level 1 of T(6): one node of each type T(0)..T(5)
        assert all(f"T({k})x1" in lines[2] for k in range(6))

    def test_doctest_example(self):
        out = render_broadcast_tree(2)
        assert "├── 1 [10] T(1)" in out
        assert "└── 2 [01] T(0)" in out


class TestOrderRender:
    def test_clean_order_mentions_all_ranks(self):
        schedule = get_strategy("clean").run(4)
        text = render_cleaning_order(schedule)
        assert "#1@" in text and "#16@" in text
        assert "level 0" in text and "level 4" in text

    def test_visibility_wave_table(self):
        schedule = get_strategy("visibility").run(4)
        text = render_wave_table(schedule)
        assert "t=  0" in text and "t=  4" in text
        # wave 1 delivers the root's children
        assert "1[1000]" in text

    def test_size_guard(self):
        schedule = get_strategy("visibility").run(4)
        with pytest.raises(ValueError):
            render_cleaning_order(schedule, max_nodes=4)

    def test_ranks_are_a_permutation(self):
        schedule = get_strategy("visibility").run(3)
        text = render_cleaning_order(schedule)
        import re

        ranks = sorted(int(m) for m in re.findall(r"#(\d+)@", text))
        assert ranks == list(range(1, 9))


class TestClassRender:
    def test_lists_classes(self):
        text = render_classes(4)
        assert "C_0 (1): 0[0000]" in text
        assert "C_4 (8):" in text

    def test_class_sizes_property_5(self):
        text = render_classes(5)
        for i in range(1, 6):
            assert f"C_{i} ({2 ** (i - 1)}):" in text

    def test_size_guard(self):
        with pytest.raises(ValueError):
            render_classes(11)

    def test_doctest_example(self):
        out = render_classes(2)
        assert "C_2 (2): 2[01], 3[11]" in out
