"""Cross-checks: bitset state layer vs. the ``slow_`` reference predicates.

The incremental :class:`~repro.sim.contamination.ContaminationMap` claims
to give exactly the answers of the original set-based implementation while
paying amortized O(1) per move.  Here random move sequences — legal and
deliberately messy (recontaminating) — drive maps on hypercubes d=3..6 and
on :class:`~repro.topology.generic.GraphAdapter` families, asserting after
*every* step that the fast predicates (``is_contiguous``,
``contaminated_nodes``, masks) agree node-for-node with the reference BFS
path (``slow_is_contiguous``, ``slow_contaminated_nodes``).
"""

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.sim.contamination import ContaminationMap
from repro.topology.generic import (
    GraphAdapter,
    grid_graph,
    hypercube_graph,
    ring_graph,
    star_graph,
)
from repro.topology.hypercube import Hypercube

TOPOLOGIES = (
    [Hypercube(d) for d in range(3, 7)]
    + [hypercube_graph(3), ring_graph(7), grid_graph(3, 3), star_graph(5)]
)


def assert_fast_equals_slow(cmap: ContaminationMap) -> None:
    """The node-for-node agreement the tentpole promises."""
    assert cmap.is_contiguous() == cmap.slow_is_contiguous()
    assert cmap.contaminated_nodes() == cmap.slow_contaminated_nodes()
    # mask/set coherence
    assert cmap.clean_mask & cmap.guard_mask == 0
    assert cmap.decontaminated_mask == cmap.clean_mask | cmap.guard_mask
    assert cmap.guarded_nodes() == set(cmap._guards)
    assert sum(cmap.census().values()) == cmap.topology.n


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: getattr(t, "name", repr(t)))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_walk_crosscheck(topology, seed):
    """Random guarded-node moves (recontamination allowed) keep the fast
    and reference predicates in lockstep at every step."""
    rng = random.Random(seed)
    cmap = ContaminationMap(topology, strict=False)
    for _ in range(rng.randint(1, 3)):
        cmap.place_agent(0)
    assert_fast_equals_slow(cmap)
    for _ in range(80):
        guarded = sorted(cmap.guarded_nodes())
        src = rng.choice(guarded)
        dst = rng.choice(sorted(topology.neighbors(src)))
        cmap.move_agent(src, dst)
        assert_fast_equals_slow(cmap)


@pytest.mark.parametrize("dimension", [3, 4, 5])
def test_monotone_schedule_crosscheck(dimension):
    """A genuine CLEAN-strategy replay: the common case the incremental
    fast path (adjacent extension, no BFS) must get right move-for-move."""
    from repro.core.strategy import get_strategy

    schedule = get_strategy("clean").run(dimension)
    cmap = ContaminationMap(Hypercube(dimension), strict=False)
    for _ in range(max(schedule.team_size, 1)):
        cmap.place_agent(0)
    for move in schedule.moves:
        cmap.move_agent(move.src, move.dst)
        assert_fast_equals_slow(cmap)
    assert cmap.all_clean()
    assert cmap.is_monotone()
    assert cmap.is_contiguous()


class TestBfsFallbackStart:
    """The rare homebase-evicted fallback must be deterministic: both code
    paths start their BFS at ``min(region)``, never at set-iteration order."""

    def test_homebase_evicted_disconnected_region(self):
        g = GraphAdapter(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)], name="P7")
        # hand-built snapshot: homebase 0 contaminated, region {2, 5} split
        cmap = ContaminationMap.from_state(g, {2: 1, 5: 1}, set(), strict=False)
        for _ in range(10):
            assert cmap.is_contiguous() is False
            assert cmap.slow_is_contiguous() is False

    def test_homebase_evicted_connected_region(self):
        g = GraphAdapter(5, [(0, 1), (1, 2), (2, 3), (3, 4)], name="P5")
        cmap = ContaminationMap.from_state(g, {2: 1, 3: 1}, {4}, strict=False)
        assert cmap.is_contiguous() is True
        assert cmap.slow_is_contiguous() is True

    def test_homebase_evicted_by_recontamination(self):
        # ring: the lone agent abandons the homebase next to a contaminated
        # node; the region collapses to the agent's node, sans homebase
        cmap = ContaminationMap(ring_graph(5), strict=False)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        assert not cmap.is_monotone()
        assert cmap.decontaminated_nodes() == {1}
        assert_fast_equals_slow(cmap)


class IncrementalCrosscheckMachine(RuleBasedStateMachine):
    """Hypothesis-driven version of the random-walk cross-check, mixing
    moves with placements and the classical remove_agent shrink events."""

    @initialize(
        topology=st.sampled_from(TOPOLOGIES),
        team=st.integers(min_value=1, max_value=3),
    )
    def setup(self, topology, team):
        self.topology = topology
        self.cmap = ContaminationMap(topology, strict=False)
        for _ in range(team):
            self.cmap.place_agent(0)

    @rule(data=st.data())
    def move_some_agent(self, data):
        guarded = sorted(self.cmap.guarded_nodes())
        if not guarded:
            return
        src = data.draw(st.sampled_from(guarded))
        dst = data.draw(st.sampled_from(sorted(self.topology.neighbors(src))))
        self.cmap.move_agent(src, dst)

    @rule()
    def clone_at_guarded(self):
        guarded = sorted(self.cmap.guarded_nodes())
        if guarded:
            self.cmap.place_agent(guarded[0])

    @rule(data=st.data())
    def remove_some_agent(self, data):
        # region-shrinking event: exercises the cache-invalidation path
        guarded = sorted(self.cmap.guarded_nodes())
        if len(guarded) > 1:
            self.cmap.remove_agent(data.draw(st.sampled_from(guarded)))

    @invariant()
    def fast_equals_slow(self):
        if hasattr(self, "cmap"):
            assert_fast_equals_slow(self.cmap)


IncrementalCrosscheckMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestIncrementalCrosscheckMachine = IncrementalCrosscheckMachine.TestCase
