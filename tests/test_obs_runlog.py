"""Tests for the RunLog trajectory store, the shared torn-tail JSONL
reader, the Prometheus exposition, the ``repro-report/v1`` payload, and
the ``trace`` / ``metrics`` CLI surface.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.obs import (
    REPORT_SCHEMA,
    TRACE_SCHEMA,
    JsonlStreamer,
    MetricsRegistry,
    RunLog,
    Tracer,
    prometheus_name,
    read_jsonl_records,
    read_runlog,
    report_payload,
    to_prometheus,
)


def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("moves_total").inc(8)
    reg.counter("moves_per_level[3]").inc(2)
    reg.gauge("workers_busy").set(2)
    series = reg.series("queue_depth")
    for t, v in enumerate([1.0, 4.0, 2.0]):
        series.sample(float(t), v)
    return reg


def write_run(root, run_id="runabc", status="ok", end=True):
    runlog = RunLog(root)
    writer = runlog.writer(run_id)
    writer.begin(manifest={"schema": "repro-manifest/v1", "git": "deadbeef"})
    tracer = Tracer(run_id=run_id)
    with tracer.span("engine.run", n=16):
        with tracer.span("strategy.run"):
            pass
    writer.write_spans(tracer.to_records())
    writer.write_metrics(sample_registry().snapshot())
    if end:
        writer.end(status=status)
    else:
        writer.close()
    return runlog, writer.path


class TestJsonlReader:
    def test_reads_records_and_skips_blanks(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert read_jsonl_records(path) == [{"a": 1}, {"b": 2}]

    def test_torn_tail_keeps_prefix(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn": ')
        assert read_jsonl_records(path) == [{"a": 1}, {"b": 2}]

    def test_missing_ok_semantics(self, tmp_path):
        assert read_jsonl_records(tmp_path / "absent.jsonl") == []
        with pytest.raises(OSError):
            read_jsonl_records(tmp_path / "absent.jsonl", missing_ok=False)

    def test_non_object_lines_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('[1, 2]\n"str"\n{"ok": true}\n')
        assert read_jsonl_records(path) == [{"ok": True}]


class TestStreamerFsync:
    def test_fsync_mode_writes_records(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with path.open("w") as fh:
            streamer = JsonlStreamer(fh, flush_every=1, fsync=True)
            streamer.write_record({"record": "x"})
        assert read_jsonl_records(path) == [{"record": "x"}]


class TestRunLogRoundTrip:
    def test_full_stream(self, tmp_path):
        _, path = write_run(tmp_path / "traces")
        data = read_runlog(path)
        assert data.schema == TRACE_SCHEMA
        assert data.run_id == "runabc"
        assert data.manifest["git"] == "deadbeef"
        assert [s["name"] for s in data.spans] == ["engine.run", "strategy.run"]
        assert data.counters["moves_total"] == 8
        assert data.complete
        assert data.end["status"] == "ok"

    def test_missing_end_marks_incomplete(self, tmp_path):
        _, path = write_run(tmp_path / "traces", end=False)
        data = read_runlog(path)
        assert not data.complete
        assert data.spans  # everything before the death is readable

    def test_torn_tail_tolerated(self, tmp_path):
        _, path = write_run(tmp_path / "traces", end=False)
        with path.open("a") as fh:
            fh.write('{"record": "metrics", "metr')  # interrupted append
        data = read_runlog(path)
        assert len(data.metrics) == 1  # the complete sample survives

    def test_end_is_idempotent_and_publishes_once(self, tmp_path):
        runlog, writer_path = write_run(tmp_path / "traces")
        runlog2 = RunLog(tmp_path / "traces")
        assert [e["run_id"] for e in runlog2.runs()] == ["runabc"]
        assert runlog2.latest() == writer_path

    def test_context_manager_ends_with_error_status(self, tmp_path):
        runlog = RunLog(tmp_path / "traces")
        with pytest.raises(RuntimeError):
            with runlog.writer("dying") as writer:
                writer.begin()
                raise RuntimeError("boom")
        data = read_runlog(tmp_path / "traces" / "dying.jsonl")
        assert data.end["status"] == "error"


class TestIndex:
    def test_replaces_by_run_id(self, tmp_path):
        runlog = RunLog(tmp_path / "traces")
        runlog.publish({"run_id": "a", "file": "a.jsonl", "status": "ok"})
        runlog.publish({"run_id": "a", "file": "a.jsonl", "status": "error"})
        (entry,) = runlog.runs()
        assert entry["status"] == "error"

    def test_corrupt_index_is_tolerated(self, tmp_path):
        runlog = RunLog(tmp_path / "traces")
        runlog.publish({"run_id": "a", "file": "a.jsonl", "status": "ok"})
        runlog.index_path.write_text("{not json")
        assert runlog.runs() == []  # streams are the source of truth
        runlog.publish({"run_id": "b", "file": "b.jsonl", "status": "ok"})
        assert [e["run_id"] for e in runlog.runs()] == ["b"]

    def test_no_tmp_droppings(self, tmp_path):
        runlog = RunLog(tmp_path / "traces")
        runlog.publish({"run_id": "a", "file": "a.jsonl", "status": "ok"})
        names = os.listdir(tmp_path / "traces")
        assert names == ["index.json"]

    def test_latest_skips_deleted_streams(self, tmp_path):
        root = tmp_path / "traces"
        _, first = write_run(root, run_id="first")
        _, second = write_run(root, run_id="second")
        second.unlink()
        assert RunLog(root).latest() == first


class TestPrometheus:
    def test_exposition_families(self):
        text = to_prometheus(sample_registry().snapshot())
        assert "# TYPE repro_moves_total counter" in text
        assert "repro_moves_total 8" in text
        assert 'repro_moves_per_level_total{key="3"} 2' in text
        assert "# TYPE repro_workers_busy gauge" in text
        assert "repro_workers_busy 2" in text
        assert "repro_queue_depth_last 2" in text
        assert "repro_queue_depth_samples 3" in text

    def test_name_sanitization(self):
        assert prometheus_name("fastpath.cache.hits") == "fastpath_cache_hits"
        assert prometheus_name("3bad") == "_3bad"

    def test_every_line_is_comment_or_sample(self):
        for line in to_prometheus(sample_registry().snapshot()).splitlines():
            assert line.startswith("#") or " " in line


class TestReportPayload:
    def test_schema_pin(self):
        payload = report_payload(sample_registry().snapshot())
        assert payload["schema"] == REPORT_SCHEMA == "repro-report/v1"
        assert set(payload) == {"schema", "counters", "gauges", "series"}
        assert payload["counters"]["moves_total"] == 8
        summary = payload["series"]["queue_depth"]
        assert set(summary) == {"first", "last", "min", "peak", "mean", "samples"}
        assert summary["peak"] == 4.0
        assert summary["samples"] == 3

    def test_report_json_cli_embeds_payload(self, tmp_path, capsys):
        target = tmp_path / "snap.json"
        assert cli_main(["report", "-d", "3", "-p", "clean", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["report"]["schema"] == "repro-report/v1"
        assert payload["report"]["counters"] == payload["metrics"]["counters"]


class TestTraceCli:
    def test_renders_runlog_file(self, tmp_path, capsys):
        _, path = write_run(tmp_path / "traces")
        assert cli_main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run runabc" in out
        assert "engine.run" in out
        assert "critical path:" in out
        assert "moves_total = 8" in out

    def test_directory_resolves_latest(self, tmp_path, capsys):
        root = tmp_path / "traces"
        write_run(root, run_id="older")
        write_run(root, run_id="newer")
        assert cli_main(["trace", str(root)]) == 0
        assert "run newer" in capsys.readouterr().out

    def test_incomplete_run_exits_nonzero(self, tmp_path, capsys):
        _, path = write_run(tmp_path / "traces", end=False)
        assert cli_main(["trace", str(path)]) == 1
        assert "status: incomplete" in capsys.readouterr().out

    def test_missing_target_is_a_clean_error(self, tmp_path, capsys):
        assert cli_main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "trace" in capsys.readouterr().err


class TestMetricsCli:
    def test_exports_runlog_snapshot(self, tmp_path, capsys):
        _, path = write_run(tmp_path / "traces")
        assert cli_main(["metrics", "--runlog", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_moves_total 8" in out

    def test_live_run_export(self, capsys):
        assert cli_main(["metrics", "-d", "3", "-p", "clean"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_moves_total counter" in out

    def test_requires_a_source(self, capsys):
        assert cli_main(["metrics"]) == 2
        assert "--runlog" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        _, path = write_run(tmp_path / "traces")
        target = tmp_path / "metrics.prom"
        assert cli_main(["metrics", "--runlog", str(path), "-o", str(target)]) == 0
        assert "repro_moves_total 8" in target.read_text()
