"""Regression tests for the re-infection lifecycle's capture accounting.

Three historical bugs are pinned here:

* capture used to be derived from the *schedule's* verification verdict
  (``complete and monotone``), ignoring the sampled seeds entirely — now
  every seed hosts an inert fugitive whose seed-dependent capture time
  is tracked against the period's timeline;
* every period re-verified the translated schedule even when the
  homebase repeated — verification and timelines are now memoized per
  distinct homebase;
* seed sampling and homebase rotation shared one RNG stream, so
  toggling ``rotate_homebase`` silently reshuffled every later period's
  seeds — they now draw from independent sub-streams, and seeds are
  sampled as homebase-relative offsets.
"""

import pytest

from repro.errors import ReproError
from repro.sim.reinfection import PeriodicCleaning


class TestSeedDependentCapture:
    def test_capture_times_are_recorded_per_seed(self):
        service = PeriodicCleaning(dimension=3, seeds_per_period=2, rng_seed=4)
        for period in service.run(3):
            assert period.captured
            assert len(period.capture_times) == len(period.seeds)
            assert all(t >= 1 for t in period.capture_times)

    def test_homebase_adjacent_seed_is_not_captured_when_cleaned(self):
        # the worst case the old accounting got wrong: seed 1 sits next
        # to homebase 0 and its node is cleaned in the very first unit,
        # but the fugitive FLEES — capture happens at the sweep's last
        # pocket, not at the node's cleaning time
        service = PeriodicCleaning(dimension=4, strategy="clean", rng_seed=0)
        (capture_unit,) = service.score_seeds(0, [1])
        timeline = service._timeline(0)
        node_cleaned_unit = next(
            t
            for t, clean in zip(timeline.unit_times, timeline.clean_after)
            if clean >> 1 & 1
        )
        assert node_cleaned_unit == 1
        assert capture_unit == timeline.unit_times[timeline.complete_index]
        assert capture_unit > node_cleaned_unit

    def test_score_seeds_varies_with_the_seed_region(self):
        # the two-pocket construction: different seeds, different times
        import tests.test_batchsim as tb

        service = PeriodicCleaning(dimension=3, rng_seed=0)
        service._base_schedule = tb.two_pocket_schedule()
        assert service.score_seeds(0, [1]) < service.score_seeds(0, [6])

    def test_describe_shows_capture_times(self):
        service = PeriodicCleaning(dimension=3, rng_seed=0)
        service.run(1)
        assert "at [" in service.describe()


class TestMemoizedVerification:
    def test_fixed_homebase_verifies_once(self, monkeypatch):
        import repro.analysis.verify as verify_mod

        calls = []
        real = verify_mod.verify_schedule
        monkeypatch.setattr(
            verify_mod, "verify_schedule", lambda s, **kw: calls.append(1) or real(s, **kw)
        )
        service = PeriodicCleaning(dimension=3, rng_seed=2)
        service.run(5)
        assert len(calls) == 1
        assert service.verifications == 1

    def test_rotation_verifies_once_per_distinct_homebase(self):
        service = PeriodicCleaning(
            dimension=3, rotate_homebase=True, rng_seed=7
        )
        service.run(12)
        distinct = {p.homebase for p in service.history}
        assert len(distinct) < 12  # some homebase repeated in 12 draws over 8 nodes
        assert service.verifications == len(distinct)


class TestIndependentStreams:
    def test_rotation_toggle_leaves_seed_offsets_unchanged(self):
        fixed = PeriodicCleaning(dimension=4, seeds_per_period=3, rng_seed=11)
        rotating = PeriodicCleaning(
            dimension=4, seeds_per_period=3, rotate_homebase=True, rng_seed=11
        )
        fixed.run(6)
        rotating.run(6)
        for a, b in zip(fixed.history, rotating.history):
            offsets_fixed = sorted(s ^ a.homebase for s in a.seeds)
            offsets_rotating = sorted(s ^ b.homebase for s in b.seeds)
            assert offsets_fixed == offsets_rotating

    def test_pinned_orderings(self):
        # golden sequences: any change to the draw order is a breaking
        # change to recorded campaigns and must show up here
        fixed = PeriodicCleaning(dimension=3, seeds_per_period=2, rng_seed=5)
        fixed.run(4)
        assert [p.homebase for p in fixed.history] == [0, 0, 0, 0]
        fixed_seeds = [p.seeds for p in fixed.history]

        rotating = PeriodicCleaning(
            dimension=3, seeds_per_period=2, rotate_homebase=True, rng_seed=5
        )
        rotating.run(4)
        homebases = [p.homebase for p in rotating.history]
        assert len(set(homebases)) > 1
        for hb, fixed_period, rotated in zip(homebases, fixed_seeds, rotating.history):
            assert sorted(s ^ hb for s in rotated.seeds) == sorted(fixed_period)

    def test_reproducible_and_seed_sensitive(self):
        a = PeriodicCleaning(dimension=3, rotate_homebase=True, rng_seed=9)
        b = PeriodicCleaning(dimension=3, rotate_homebase=True, rng_seed=9)
        c = PeriodicCleaning(dimension=3, rotate_homebase=True, rng_seed=10)
        assert a.run(5) == b.run(5)
        assert a.history != c.run(5)


class TestLifecycleContract:
    def test_bad_seed_count_rejected(self):
        with pytest.raises(ReproError):
            PeriodicCleaning(dimension=3, seeds_per_period=0)

    def test_seeds_avoid_homebase_under_rotation(self):
        service = PeriodicCleaning(
            dimension=3, seeds_per_period=7, rotate_homebase=True, rng_seed=3
        )
        for period in service.run(6):
            assert period.homebase not in period.seeds
            assert len(period.seeds) == 7  # capped at n - 1
