"""Unit tests for whiteboards and bit accounting."""

import pytest

from repro.errors import WhiteboardError
from repro.sim.whiteboard import Whiteboard, estimate_bits


class TestEstimateBits:
    def test_scalars(self):
        assert estimate_bits(None) == 1
        assert estimate_bits(True) == 1
        assert estimate_bits(0) == 1
        assert estimate_bits(255) == 9  # 8 bits + sign
        assert estimate_bits(1.5) == 64
        assert estimate_bits("ab") == 16

    def test_containers(self):
        assert estimate_bits([]) == 8
        assert estimate_bits([1, 2]) > estimate_bits([1])
        assert estimate_bits({"a": 1}) > 8

    def test_unsupported(self):
        with pytest.raises(WhiteboardError):
            estimate_bits(object())

    def test_int_grows_logarithmically(self):
        assert estimate_bits(2**20) < estimate_bits(2**40)


class TestWhiteboard:
    def test_initial_info(self):
        wb = Whiteboard(node=5, degree=3)
        info = wb.initial_info
        assert info["id"] == 5
        assert info["ports"] == [1, 2, 3]

    def test_read_write(self):
        wb = Whiteboard(0, 2)
        wb.write("count", 3)
        assert wb.read("count") == 3
        assert wb.read() == {"count": 3}
        assert wb.read("missing") is None

    def test_update_atomic(self):
        wb = Whiteboard(0, 2)

        def bump(data):
            data["count"] = data.get("count", 0) + 1
            return data["count"]

        assert wb.update(bump) == 1
        assert wb.update(bump) == 2

    def test_delete(self):
        wb = Whiteboard(0, 2)
        wb.write("x", 1)
        wb.delete("x")
        assert wb.read("x") is None
        wb.delete("x")  # idempotent

    def test_non_string_key_rejected(self):
        wb = Whiteboard(0, 2)
        with pytest.raises(WhiteboardError):
            wb.write(3, "x")

    def test_capacity_enforced(self):
        wb = Whiteboard(0, 2, capacity_bits=32)
        with pytest.raises(WhiteboardError):
            wb.write("big", "a very long string exceeding the budget")

    def test_peak_tracks_high_water(self):
        wb = Whiteboard(0, 2)
        wb.write("x", 2**30)
        peak = wb.peak_bits
        wb.delete("x")
        wb.write("x", 1)
        assert wb.peak_bits == peak  # high-water mark survives shrinking

    def test_access_counter(self):
        wb = Whiteboard(0, 2)
        wb.write("a", 1)
        wb.read("a")
        wb.update(lambda d: None)
        assert wb.access_count == 3

    def test_counter_protocol_stays_logarithmic(self):
        """A counter-based protocol keeps O(log n) bits even for huge counts;
        the paper's bound is about exactly this usage pattern."""
        wb = Whiteboard(0, 10, capacity_bits=256)
        for value in (1, 100, 2**20, 2**60):
            wb.write("count", value)
        assert wb.peak_bits <= 256


class TestReadIsolation:
    """Reads return snapshots: mutating them must never bypass the
    capacity ceiling or change node state outside the action vocabulary."""

    def test_read_returns_deep_copies(self):
        wb = Whiteboard(0, 2)
        wb.write("arrivals", [1, 2])
        snapshot = wb.read("arrivals")
        snapshot.append(3)
        assert wb.read("arrivals") == [1, 2]

    def test_read_all_returns_deep_copies(self):
        wb = Whiteboard(0, 2)
        wb.write("nested", {"ids": [7]})
        snapshot = wb.read()
        snapshot["nested"]["ids"].append(8)
        snapshot["extra"] = "smuggled"
        assert wb.read() == {"nested": {"ids": [7]}}

    def test_aliased_mutation_cannot_exceed_capacity_unnoticed(self):
        # Regression: read() used to return the live list, so growing it
        # in place inflated the stored bits without any write/update ever
        # running _account() — the capacity ceiling never fired.
        wb = Whiteboard(0, 2, capacity_bits=128)
        wb.write("trail", [1])
        alias = wb.read("trail")
        alias.extend(range(1000))  # would blow the 128-bit budget if live
        assert wb.used_bits() <= 128
        wb.write("ok", 1)  # accounting still passes: the board never grew

    def test_delete_reruns_accounting(self):
        # Regression: delete() skipped _account(), so a board pushed over
        # capacity by an aliasing bug sailed through deletes silently.
        wb = Whiteboard(0, 2, capacity_bits=64)
        wb.write("a", 1)
        wb._data["smuggled"] = "x" * 50  # simulate an accounting bypass
        with pytest.raises(WhiteboardError):
            wb.delete("a")

    def test_delete_then_read_accounting(self):
        wb = Whiteboard(0, 2, capacity_bits=64)
        wb.write("a", 2**40)
        used_before = wb.used_bits()
        wb.delete("a")
        assert wb.used_bits() < used_before
        assert wb.read() == {}
        assert wb.peak_bits == used_before  # high-water mark survives
