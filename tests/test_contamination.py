"""Unit tests for the exact contamination dynamics."""

import pytest

from repro.core.states import NodeState
from repro.errors import RecontaminationError, SimulationError
from repro.sim.contamination import ContaminationMap
from repro.topology.generic import path_graph, ring_graph, star_graph
from repro.topology.hypercube import Hypercube


class TestInitialState:
    def test_everything_contaminated(self):
        cmap = ContaminationMap(Hypercube(3))
        assert all(cmap.state(x) is NodeState.CONTAMINATED for x in range(8))
        assert not cmap.all_clean()
        assert cmap.is_monotone()
        assert cmap.is_contiguous()  # empty region counts as contiguous

    def test_bad_homebase(self):
        with pytest.raises(SimulationError):
            ContaminationMap(Hypercube(2), homebase=4)


class TestPlacement:
    def test_place_at_homebase(self):
        cmap = ContaminationMap(Hypercube(2))
        cmap.place_agent(0)
        assert cmap.state(0) is NodeState.GUARDED
        assert cmap.guards(0) == 1

    def test_stacking(self):
        cmap = ContaminationMap(Hypercube(2))
        cmap.place_agent(0)
        cmap.place_agent(0)
        assert cmap.guards(0) == 2

    def test_place_on_contaminated_rejected(self):
        cmap = ContaminationMap(Hypercube(2))
        with pytest.raises(SimulationError):
            cmap.place_agent(3)

    def test_place_on_guarded_ok(self):
        cmap = ContaminationMap(Hypercube(2))
        cmap.place_agent(0)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        cmap.place_agent(1)  # cloning onto a guarded node
        assert cmap.guards(1) == 2


class TestMoves:
    def test_move_decontaminates_target(self):
        cmap = ContaminationMap(Hypercube(2))
        cmap.place_agent(0)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        assert cmap.state(1) is NodeState.GUARDED
        assert cmap.state(0) is NodeState.GUARDED  # second agent still there

    def test_move_without_agent_rejected(self):
        cmap = ContaminationMap(Hypercube(2))
        with pytest.raises(SimulationError):
            cmap.move_agent(0, 1)

    def test_move_along_non_edge_rejected(self):
        cmap = ContaminationMap(Hypercube(2))
        cmap.place_agent(0)
        with pytest.raises(SimulationError):
            cmap.move_agent(0, 3)

    def test_atomic_move_is_monotone_on_path(self):
        g = path_graph(4)
        cmap = ContaminationMap(g)
        cmap.place_agent(0)
        for src, dst in [(0, 1), (1, 2), (2, 3)]:
            cmap.move_agent(src, dst)
        assert cmap.all_clean()
        assert cmap.is_monotone()

    def test_first_visit_order_tracking(self):
        g = path_graph(3)
        cmap = ContaminationMap(g)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        cmap.move_agent(1, 2)
        assert cmap.first_visit_order == [0, 1, 2]


class TestRecontamination:
    def test_strict_raises(self):
        g = star_graph(3)  # centre 0, leaves 1..3
        cmap = ContaminationMap(g, strict=True)
        cmap.place_agent(0)
        with pytest.raises(RecontaminationError):
            cmap.move_agent(0, 1)  # abandons the centre next to leaves 2, 3

    def test_non_strict_records(self):
        g = star_graph(3)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        assert not cmap.is_monotone()
        assert (0, 2) in cmap.recontamination_events or (0, 3) in cmap.recontamination_events

    def test_spread_through_clean_region(self):
        """Recontamination floods transitively through unguarded clean nodes."""
        g = path_graph(5)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        cmap.move_agent(1, 2)
        cmap.move_agent(2, 3)
        # jump back: vacate 3 while 4 is contaminated -> 3, 2, 1, 0 all fall
        cmap.move_agent(3, 2)
        cmap.move_agent(2, 1)
        assert cmap.state(2) is NodeState.CONTAMINATED
        assert cmap.state(3) is NodeState.CONTAMINATED
        assert len(cmap.recontamination_events) >= 2

    def test_guard_blocks_spread(self):
        g = path_graph(5)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        cmap.move_agent(1, 2)  # agent A at 2; agent B still at 0
        cmap.move_agent(0, 1)  # B at 1
        cmap.move_agent(2, 3)
        cmap.move_agent(3, 4)  # A sweeps on; all clean behind
        assert cmap.all_clean()
        assert cmap.is_monotone()


class TestPredicates:
    def test_contiguity_detects_split(self):
        g = path_graph(5)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        cmap.move_agent(1, 2)
        cmap.move_agent(2, 3)
        cmap.move_agent(3, 4)
        assert cmap.is_contiguous()
        # now 0 is clean+guarded? 0 holds the second agent: move it away
        # along the line to make a gap impossible on a path -- instead check
        # census coherence
        census = cmap.census()
        assert census[NodeState.CONTAMINATED] == 0

    def test_census_sums_to_n(self):
        cmap = ContaminationMap(Hypercube(3))
        cmap.place_agent(0)
        census = cmap.census()
        assert sum(census.values()) == 8

    def test_decontaminated_sets(self):
        g = ring_graph(4)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        assert cmap.guarded_nodes() == {0, 1}
        assert cmap.clean_nodes() == set()
        assert cmap.decontaminated_nodes() == {0, 1}
        assert cmap.contaminated_nodes() == {2, 3}

    def test_remove_agent_classical_model(self):
        g = path_graph(2)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        cmap.move_agent(0, 1)
        cmap.remove_agent(1)
        assert cmap.all_clean()

    def test_remove_missing_agent(self):
        cmap = ContaminationMap(path_graph(2))
        with pytest.raises(SimulationError):
            cmap.remove_agent(0)

    def test_snapshot_and_repr(self):
        cmap = ContaminationMap(Hypercube(2))
        cmap.place_agent(0)
        snap = cmap.snapshot()
        assert snap[0] is NodeState.GUARDED
        assert "guarded=1" in repr(cmap)
