"""Tests for the programmatic experiment registry."""

import pytest

from repro.analysis.experiments import (
    ExperimentResult,
    experiment_ids,
    run_all,
    run_experiment,
)
from repro.errors import ReproError

EXPECTED_IDS = {
    "F1", "F2", "F3", "F4", "T1",
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
    "A1", "A2", "A3", "A4", "A5", "A6",
}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(experiment_ids()) == EXPECTED_IDS

    def test_unknown_id_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("Z9")

    @pytest.mark.parametrize(
        "exp_id", sorted(EXPECTED_IDS - {"E9", "A1", "A3", "A4", "A5", "A6", "T1", "E3"})
    )
    def test_fast_experiments_pass(self, exp_id):
        result = run_experiment(exp_id)
        assert result.passed, result.render()
        assert result.lines

    @pytest.mark.parametrize("exp_id", ["E9", "A1", "A3", "A4", "A5", "A6", "T1", "E3"])
    def test_slow_experiments_pass(self, exp_id):
        result = run_experiment(exp_id)
        assert result.passed, result.render()

    def test_render_format(self):
        result = ExperimentResult("X1", "demo", True, ["row"])
        text = result.render()
        assert text.startswith("[PASS] X1 — demo")
        assert "  row" in text

    def test_run_all_passes(self):
        results = run_all()
        assert len(results) == len(EXPECTED_IDS)
        assert all(r.passed for r in results)


class TestCliExperimentVerb:
    def test_single(self, capsys):
        from repro.cli import main

        assert main(["experiment", "E5"]) == 0
        assert "[PASS] E5" in capsys.readouterr().out

    def test_unknown(self):
        from repro.cli import main
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["experiment", "nope"])
