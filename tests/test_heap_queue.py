"""Unit tests for the heap queue T(d) (Definition 1)."""

import pytest

from repro.errors import TopologyError
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.heap_queue import HeapQueue


class TestDefinition1:
    def test_t0_is_leaf(self):
        t = HeapQueue(0)
        assert t.is_leaf()
        assert t.size == 1
        assert t.children == []

    def test_t1_one_child(self):
        t = HeapQueue(1)
        assert [c.order for c in t.children] == [0]

    def test_tk_children_types(self):
        for k in range(6):
            t = HeapQueue(k)
            assert [c.order for c in t.children] == list(range(k - 1, -1, -1))

    def test_validate(self):
        for k in range(7):
            HeapQueue(k).validate()

    def test_validate_catches_tampering(self):
        t = HeapQueue(3)
        t.children.pop()
        with pytest.raises(TopologyError):
            t.validate()

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            HeapQueue(-1)

    def test_huge_rejected(self):
        with pytest.raises(TopologyError):
            HeapQueue(25)


class TestCounts:
    def test_size_is_power_of_two(self):
        for k in range(9):
            t = HeapQueue(k)
            assert t.size == 2**k == t.count_nodes()

    def test_leaf_count(self):
        assert HeapQueue(0).count_leaves() == 1
        for k in range(1, 9):
            assert HeapQueue(k).count_leaves() == 2 ** (k - 1)

    def test_height(self):
        for k in range(8):
            assert HeapQueue(k).height() == k

    def test_nodes_per_depth_binomial(self):
        for k in range(8):
            t = HeapQueue(k)
            per_depth = t.nodes_per_depth()
            for depth, count in enumerate(per_depth):
                assert count == HeapQueue.expected_depth_census(k, depth)

    def test_type_census_at_depth_matches_broadcast_tree(self):
        hq = HeapQueue(6)
        bt = BroadcastTree(6)
        for depth in range(7):
            assert hq.type_census_at_depth(depth) == bt.type_census(depth)

    def test_preorder_types_count(self):
        t = HeapQueue(5)
        types = list(t.preorder_types())
        assert len(types) == 32
        assert types[0] == 5


class TestIsomorphism:
    """The paper's 'very well known' fact: the broadcast spanning tree of a
    hypercube of size n is a heap queue T(log n)."""

    @pytest.mark.parametrize("d", range(0, 9))
    def test_heap_queue_is_broadcast_tree(self, d):
        assert HeapQueue(d).isomorphic_to_broadcast_tree(BroadcastTree(d))

    def test_mismatched_orders_fail(self):
        assert not HeapQueue(3).isomorphic_to_broadcast_tree(BroadcastTree(4))

    def test_requires_broadcast_tree(self):
        with pytest.raises(TopologyError):
            HeapQueue(2).isomorphic_to_broadcast_tree("not a tree")


class TestMisc:
    def test_find_child(self):
        t = HeapQueue(4)
        assert t.find_child(2).order == 2
        assert t.find_child(9) is None

    def test_equality(self):
        assert HeapQueue(3) == HeapQueue(3)
        assert HeapQueue(3) != HeapQueue(4)
        assert hash(HeapQueue(3)) == hash(HeapQueue(3))
