"""Deeper engine edge cases: contention, generic topologies, extension."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import verify_schedule
from repro.core.schedule import Schedule
from repro.core.strategy import Strategy
from repro.errors import ReproError, ScheduleError
from repro.sim.agent import Move, Terminate, UpdateWhiteboard, WaitUntil
from repro.sim.engine import Engine
from repro.sim.scheduling import RandomDelay
from repro.topology.generic import path_graph, ring_graph
from repro.topology.hypercube import Hypercube

from .conftest import connected_graphs


class TestWhiteboardContention:
    @pytest.mark.parametrize("agents", [2, 8, 20])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_counter_under_contention(self, agents, seed):
        """N agents each bump a shared counter 5 times with jittered local
        delays; mutual exclusion means no lost update, ever."""

        def bumper(ctx):
            for _ in range(5):
                yield UpdateWhiteboard(
                    lambda wb: wb.__setitem__("hits", wb.get("hits", 0) + 1)
                )
            yield Terminate()

        engine = Engine(
            path_graph(2),
            [bumper] * agents,
            delay=RandomDelay(seed=seed, local_jitter=0.7),
            intruder=None,
            check_contiguity=False,
        )
        engine.run()
        assert engine.board(0).read("hits") == 5 * agents

    def test_take_one_of_n_tokens(self):
        """Exactly-once consumption under racing takers."""

        def take(wb):
            if wb.get("tokens", 3) > 0:
                wb["tokens"] = wb.get("tokens", 3) - 1
                return True
            return False

        winners = []

        def taker(ctx):
            won = yield UpdateWhiteboard(take)
            if won:
                winners.append(ctx.agent_id)
            yield Terminate()

        Engine(path_graph(2), [taker] * 10, intruder=None).run()
        assert len(winners) == 3


class TestGenericTopologyEngine:
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(graph=connected_graphs(max_nodes=9))
    def test_engine_rejudges_frontier_schedules(self, graph):
        """Fuzz: the frontier sweep's schedule, executed as real scripted
        agents, gets the same clean verdict from the engine's independent
        bookkeeping as from the schedule verifier."""
        from repro.search.frontier_sweep import frontier_sweep_schedule
        from repro.sim.replay import execute_schedule_on_engine

        schedule = frontier_sweep_schedule(graph)
        result = execute_schedule_on_engine(schedule, graph)
        assert result.ok, result.summary()
        assert result.total_moves == schedule.total_moves


class TestWaitSemantics:
    def test_predicate_with_exception_propagates(self):
        def bad(ctx):
            yield WaitUntil(lambda view: 1 / 0)

        with pytest.raises(ZeroDivisionError):
            Engine(path_graph(2), [bad]).run()

    def test_many_waiters_single_wake(self):
        """All waiters on the same condition run exactly once when it turns
        true (no lost or duplicated wakeups)."""
        ran = []

        def waiter(ctx):
            yield WaitUntil(lambda view: bool(view.wb("go")))
            ran.append(ctx.agent_id)
            yield Terminate()

        def trigger(ctx):
            yield UpdateWhiteboard(lambda wb: wb.__setitem__("go", True))
            yield Terminate()

        Engine(path_graph(2), [waiter] * 6 + [trigger], intruder=None).run()
        assert sorted(ran) == list(range(6))

    def test_wake_at_in_past_fires_immediately(self):
        def timed(ctx):
            yield WaitUntil(lambda view: view.time >= 0.0, wake_at=0.0)
            yield Move(1)

        result = Engine(path_graph(2), [timed], global_clock=True).run()
        assert result.ok


class TestStrategyExtensionPoint:
    def test_custom_registration_and_duplicate_rejection(self):
        from repro.core.strategy import _REGISTRY, register

        class Custom(Strategy):
            name = "custom-test-strategy"
            model = "whiteboard"

            def generate(self, hypercube):
                schedule = Schedule(
                    dimension=hypercube.d, strategy=self.name, team_size=1
                )
                return schedule

        try:
            register(Custom)
            from repro.core.strategy import get_strategy

            assert isinstance(get_strategy("custom-test-strategy"), Custom)
            with pytest.raises(ReproError):
                register(Custom)  # duplicate name
        finally:
            _REGISTRY.pop("custom-test-strategy", None)

    def test_unnamed_strategy_rejected(self):
        from repro.core.strategy import register

        class NoName(Strategy):
            model = "whiteboard"

            def generate(self, hypercube):
                raise NotImplementedError

        with pytest.raises(ReproError):
            register(NoName)


class TestRobustness:
    def test_malformed_schedule_json(self):
        with pytest.raises(Exception):
            Schedule.from_json("{not json")
        with pytest.raises(Exception):
            Schedule.from_json('{"dimension": 2}')  # missing fields

    def test_verifier_rejects_wrong_topology_moves(self):
        schedule = Schedule(
            dimension=3,
            strategy="x",
            moves=[],
            team_size=1,
        )
        # empty schedule on H_3: incomplete but structurally fine
        report = verify_schedule(schedule)
        assert not report.complete

    def test_move_time_must_be_integer_like(self):
        from repro.core.schedule import Move

        with pytest.raises(ScheduleError):
            Move(agent=0, src=0, dst=1, time=-3)

    def test_ring_engine_default_contiguity(self):
        """Engine contiguity checking works on generic graphs too."""

        def hopper(ctx):
            yield Move(1)
            yield Move(2)
            yield Move(3)

        def home_guard(ctx):
            yield Terminate()

        result = Engine(ring_graph(4), [hopper, home_guard]).run()
        assert result.all_clean
        assert result.contiguous

    def test_hypercube_engine_dimension_passthrough(self):
        """Agents on a Hypercube receive the dimension in their context."""
        seen = {}

        def prober(ctx):
            seen["d"] = ctx.dimension
            yield Terminate()

        Engine(Hypercube(5), [prober], intruder=None).run()
        assert seen["d"] == 5
