"""Tests for the metrics registry and the simulation metrics collector."""

import json

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, SimMetricsCollector, TimeSeries
from repro.obs.report import render_report, sparkline
from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol


class TestInstruments:
    def test_counter(self):
        c = Counter("moves")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("frontier")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5

    def test_series_records_in_order(self):
        s = TimeSeries("clean", maxlen=8)
        for t in range(5):
            s.sample(float(t), t * 10)
        assert s.samples == [(0.0, 0), (1.0, 10), (2.0, 20), (3.0, 30), (4.0, 40)]

    def test_series_decimates_at_capacity(self):
        s = TimeSeries("clean", maxlen=8)
        for t in range(100):
            s.sample(float(t), t)
        assert len(s.samples) <= 8
        times = [t for t, _ in s.samples]
        assert times == sorted(times)
        # full run still covered: first sample kept, a recent one present
        assert times[0] == 0.0
        assert times[-1] >= 50.0

    def test_series_minimum_capacity(self):
        with pytest.raises(ValueError):
            TimeSeries("x", maxlen=4)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.series("c") is reg.series("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("moves").inc(3)
        reg.gauge("frontier").set(2)
        reg.series("clean").sample(1.0, 4)
        snap = reg.snapshot()
        assert snap["counters"] == {"moves": 3}
        assert snap["gauges"] == {"frontier": 2}
        assert snap["series"] == {"clean": [[1.0, 4]]}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("moves").inc()
        assert json.loads(reg.to_json()) == reg.snapshot()


class TestCollector:
    @pytest.fixture(scope="class")
    def collected(self):
        collector = SimMetricsCollector()
        result = run_visibility_protocol(4, subscribers=[collector])
        return collector, result

    def test_counters_match_result(self, collected):
        collector, result = collected
        counters = collector.registry.snapshot()["counters"]
        assert counters["moves_total"] == result.total_moves
        assert counters["terminations_total"] == result.terminated_agents
        # a monotone run never creates the recontamination counter
        assert "recontaminations_total" not in counters

    def test_moves_per_level_sum(self, collected):
        collector, result = collected
        counters = collector.registry.snapshot()["counters"]
        per_level = {
            k: v for k, v in counters.items() if k.startswith("moves_per_level[")
        }
        assert sum(per_level.values()) == result.total_moves

    def test_final_gauges(self, collected):
        collector, result = collected
        gauges = collector.registry.snapshot()["gauges"]
        # d=4 run ends fully decontaminated: nothing contaminated, frontier 0
        assert gauges["contaminated_nodes"] == 0
        assert gauges["frontier_size"] == 0
        assert gauges["clean_nodes"] + gauges["guarded_nodes"] == 16
        assert gauges["agents_total"] == result.team_size
        assert gauges["agents_terminated"] == result.terminated_agents
        assert gauges["sim_time"] == result.makespan

    def test_series_collected(self, collected):
        collector, _ = collected
        series = collector.registry.snapshot()["series"]
        clean = series["clean_nodes"]
        assert clean, "clean_nodes series must be sampled"
        values = [v for _, v in clean]
        # the region only grows on a monotone run
        assert values == sorted(values)

    def test_per_agent_table(self, collected):
        collector, result = collected
        snap = collector.snapshot()
        assert len(snap["per_agent"]) == result.team_size
        assert all(row["state"] == "terminated" for row in snap["per_agent"].values())
        total = sum(row["moves"] for row in snap["per_agent"].values())
        assert total == result.total_moves

    def test_clone_counter(self):
        collector = SimMetricsCollector()
        result = run_cloning_protocol(3, subscribers=[collector])
        counters = collector.registry.snapshot()["counters"]
        assert counters["clones_total"] == result.team_size - 1

    def test_sample_every_thins_series(self):
        dense = SimMetricsCollector()
        sparse = SimMetricsCollector(sample_every=8)
        run_visibility_protocol(4, subscribers=[dense, sparse])
        dense_n = len(dense.registry.series("clean_nodes").samples)
        sparse_n = len(sparse.registry.series("clean_nodes").samples)
        assert sparse_n < dense_n

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            SimMetricsCollector(sample_every=0)


class TestReport:
    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7], width=8)
        assert len(line) == 8
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        flat = sparkline([3, 3, 3])
        assert len(set(flat)) == 1

    def test_render_report_from_live_run(self):
        collector = SimMetricsCollector()
        run_visibility_protocol(3, subscribers=[collector])
        text = render_report(collector.snapshot(), title="d=3 visibility")
        assert "d=3 visibility" in text
        assert "moves_total" in text
        assert "clean_nodes" in text
