"""Tests for the fault-tolerant worker pool (``repro.exec.pool``).

The fault drills run real child processes: workers that SIGKILL
themselves mid-job, workers that hang past the timeout, workers that
raise.  Each drill asserts the contract from the module docstring —
crashes and timeouts consume retries and get fresh workers, task errors
fail fast, exhausted jobs degrade to ``FAILED`` outcomes, and the merged
outcome list is in job-definition order no matter who finished first.
"""

import json

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    CRASH_ENV,
    Checkpoint,
    ExecutorConfig,
    Job,
    JobOutcome,
    JobStatus,
    ParallelExecutor,
    fingerprint_jobs,
    get_task,
    registered_tasks,
    run_jobs,
)
from repro.obs import MetricsRegistry

#: Fast-retry policy for the drills: no real backoff waiting in tests.
FAST = dict(backoff_base=0.0, backoff_factor=1.0, backoff_max=0.0)


def echo_jobs(count):
    return [
        Job(key=f"echo:{i}", task="echo", payload={"i": i}, index=i)
        for i in range(count)
    ]


class TestConfig:
    def test_defaults_valid(self):
        ExecutorConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"retries": -1},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"backoff_factor": 0.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ExecutionError):
            ExecutorConfig(**kwargs).validate()

    def test_backoff_is_capped_exponential(self):
        cfg = ExecutorConfig(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert cfg.backoff(0) == pytest.approx(0.1)
        assert cfg.backoff(1) == pytest.approx(0.2)
        assert cfg.backoff(5) == pytest.approx(0.3)  # capped


class TestRegistry:
    def test_builtin_tasks_registered(self):
        import repro.exec.tasks  # noqa: F401 - registration side effect

        names = set(registered_tasks())
        assert {"sweep_cell", "experiment_cell", "echo", "sleep", "fail", "crash"} <= names

    def test_unknown_task_raises(self):
        with pytest.raises(ExecutionError, match="unknown task"):
            get_task("no-such-task")

    def test_unknown_task_fails_before_any_fork(self):
        with pytest.raises(ExecutionError, match="unknown task"):
            run_jobs([Job(key="x", task="no-such-task")])

    def test_duplicate_keys_rejected(self):
        jobs = [Job(key="dup", task="echo"), Job(key="dup", task="echo", index=1)]
        with pytest.raises(ExecutionError, match="duplicate job key"):
            run_jobs(jobs)


class TestHappyPath:
    def test_outcomes_in_submission_order(self):
        outcomes = run_jobs(echo_jobs(6), ExecutorConfig(jobs=3))
        assert [o.key for o in outcomes] == [f"echo:{i}" for i in range(6)]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert [o.value["i"] for o in outcomes] == list(range(6))

    def test_parallel_matches_serial(self):
        serial = run_jobs(echo_jobs(5), ExecutorConfig(jobs=1))
        parallel = run_jobs(echo_jobs(5), ExecutorConfig(jobs=4))
        assert [o.value for o in serial] == [o.value for o in parallel]

    def test_outcome_carries_provenance(self):
        (outcome,) = run_jobs(echo_jobs(1))
        assert outcome.worker_pid is not None
        assert outcome.manifest is not None
        assert outcome.manifest["schema"] == "repro-manifest/v1"
        assert outcome.manifest["extra"]["job"] == "echo:0"


class TestCrashIsolation:
    def test_killed_worker_is_requeued_and_succeeds(self):
        job = Job(key="crash:1", task="crash", payload={"crash_times": 1})
        (outcome,) = run_jobs([job], ExecutorConfig(retries=2, **FAST))
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.value["survived_after"] == 1

    def test_crash_does_not_poison_neighbours(self):
        jobs = echo_jobs(4) + [
            Job(key="crash:mid", task="crash", payload={"crash_times": 1}, index=4)
        ]
        outcomes = run_jobs(jobs, ExecutorConfig(jobs=2, retries=2, **FAST))
        assert all(o.ok for o in outcomes)
        assert [o.key for o in outcomes] == [j.key for j in jobs]

    def test_persistent_crasher_degrades_to_failed(self):
        job = Job(key="crash:always", task="crash", payload={"crash_times": 99})
        (outcome,) = run_jobs([job], ExecutorConfig(retries=1, **FAST))
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 2  # 1 + retries
        assert "crashed" in outcome.error

    def test_injected_crash_via_environment(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "echo:1::1")
        outcomes = run_jobs(echo_jobs(3), ExecutorConfig(jobs=2, retries=2, **FAST))
        assert all(o.ok for o in outcomes)
        by_key = {o.key: o for o in outcomes}
        assert by_key["echo:1"].attempts == 2  # crashed once, retried
        assert by_key["echo:0"].attempts == 1
        assert by_key["echo:2"].attempts == 1


class TestTimeouts:
    def test_hung_worker_is_killed_and_fails(self):
        job = Job(key="sleep:long", task="sleep", payload={"seconds": 60.0})
        (outcome,) = run_jobs([job], ExecutorConfig(timeout=0.2, retries=1, **FAST))
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 2
        assert "timed out" in outcome.error

    def test_fast_jobs_unaffected_by_timeout(self):
        outcomes = run_jobs(echo_jobs(3), ExecutorConfig(jobs=2, timeout=30.0))
        assert all(o.ok for o in outcomes)


class TestTaskErrors:
    def test_not_retried_by_default(self):
        job = Job(key="fail:1", task="fail", payload={"message": "boom"})
        (outcome,) = run_jobs([job], ExecutorConfig(retries=3, **FAST))
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 1  # deterministic error: no retry burned
        assert outcome.error == "RuntimeError: boom"

    def test_retried_when_opted_in(self):
        job = Job(key="fail:2", task="fail", payload={"message": "boom"})
        (outcome,) = run_jobs([job], ExecutorConfig(retries=2, retry_errors=True, **FAST))
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 3


class TestMetrics:
    def test_counters_and_series(self):
        registry = MetricsRegistry()
        jobs = echo_jobs(2) + [
            Job(key="crash:m", task="crash", payload={"crash_times": 1}, index=2),
            Job(key="fail:m", task="fail", index=3),
        ]
        run_jobs(jobs, ExecutorConfig(jobs=2, retries=2, **FAST), metrics=registry)
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["exec.jobs_ok"] == 3
        assert counters["exec.jobs_failed"] == 1
        assert counters["exec.crashes"] == 1
        assert counters["exec.retries"] == 1
        assert counters["exec.task_errors"] == 1
        assert len(snap["series"]["exec.job_seconds"]) == 4


class TestCheckpointResume:
    def test_second_run_serves_from_cache(self, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = echo_jobs(3)
        first = run_jobs(jobs, checkpoint=path)
        assert all(not o.cached for o in first)
        second = run_jobs(jobs, checkpoint=path)
        assert all(o.cached for o in second)
        assert [o.value for o in second] == [o.value for o in first]

    def test_failed_cells_are_reattempted_on_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = echo_jobs(2) + [Job(key="fail:r", task="fail", index=2)]
        first = run_jobs(jobs, ExecutorConfig(**FAST), checkpoint=path)
        assert [o.ok for o in first] == [True, True, False]
        second = run_jobs(jobs, ExecutorConfig(**FAST), checkpoint=path)
        assert [o.cached for o in second] == [True, True, False]  # FAILED re-ran

    def test_fingerprint_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_jobs(echo_jobs(2), checkpoint=path)
        different = [
            Job(key="echo:0", task="echo", payload={"i": 99}, index=0),
            Job(key="echo:1", task="echo", payload={"i": 1}, index=1),
        ]
        outcomes = run_jobs(different, checkpoint=path)
        assert all(not o.cached for o in outcomes)
        assert outcomes[0].value["i"] == 99

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = echo_jobs(3)
        run_jobs(jobs, checkpoint=path)
        with path.open("a") as fh:
            fh.write('{"record": "outcome", "key": "echo:9"')  # interrupted append
        outcomes = run_jobs(jobs, checkpoint=path)
        assert all(o.cached for o in outcomes)

    def test_header_fingerprint_covers_code_identity(self):
        jobs = echo_jobs(2)
        a = fingerprint_jobs(jobs, {"schema": "v1", "git": "abc", "python": "3.11"})
        b = fingerprint_jobs(jobs, {"schema": "v1", "git": "def", "python": "3.11"})
        assert a != b

    def test_checkpoint_file_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_jobs(echo_jobs(2), checkpoint=path)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "header"
        assert records[0]["schema"] == "repro-exec-checkpoint/v2"
        assert {r["key"] for r in records[1:]} == {"echo:0", "echo:1"}

    def test_checkpoint_context_manager(self, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = echo_jobs(1)
        with Checkpoint(path) as ckpt:
            assert ckpt.open(jobs, None) == {}
            ckpt.record(
                JobOutcome(key="echo:0", status=JobStatus.OK, value={"i": 0})
            )
        reloaded = Checkpoint(path).load_reusable(jobs, None)
        assert reloaded["echo:0"].value == {"i": 0}


class TestCompletionHook:
    def test_on_outcome_fires_for_every_job(self):
        seen = []
        executor = ParallelExecutor(
            ExecutorConfig(jobs=2), on_outcome=lambda job, o: seen.append((job.key, o.ok))
        )
        executor.run(echo_jobs(4))
        assert sorted(seen) == [(f"echo:{i}", True) for i in range(4)]
