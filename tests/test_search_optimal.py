"""Tests for the exact contiguous-search state machine and brute force."""

import pytest

from repro.analysis.verify import ScheduleVerifier
from repro.errors import CapacityError
from repro.search.contiguous import (
    SearchState,
    apply_move,
    initial_state,
    is_goal,
    legal_moves,
)
from repro.search.optimal import (
    minimum_moves,
    optimal_schedule,
    optimal_search_number,
    solvable_with,
)
from repro.topology.generic import (
    complete_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)


class TestStateMachine:
    def test_initial_state(self):
        s = initial_state(3, homebase=0)
        assert s.guards == (0, 0, 0)
        assert s.clean == frozenset()
        assert s.guarded_set() == {0}

    def test_initial_needs_agent(self):
        with pytest.raises(ValueError):
            initial_state(0)

    def test_goal_detection(self):
        g = path_graph(2)
        s = SearchState(guards=(1,), clean=frozenset({0}))
        assert is_goal(s, g.n)
        assert not is_goal(initial_state(1), g.n)

    def test_apply_move(self):
        g = path_graph(3)
        s = initial_state(1)
        s2 = apply_move(g, s, 0, 1)
        assert s2.guards == (1,)
        assert s2.clean == frozenset({0})

    def test_apply_move_keeps_guard_on_stacked(self):
        g = path_graph(3)
        s = initial_state(2)
        s2 = apply_move(g, s, 0, 1)
        assert s2.guards == (0, 1)
        assert s2.clean == frozenset()

    def test_legal_moves_forbid_recontamination(self):
        g = star_graph(3)
        s = initial_state(1)  # one agent at the centre
        moves = list(legal_moves(g, s))
        assert moves == []  # leaving the centre abandons it to other leaves

    def test_legal_moves_allow_stacked_departure(self):
        g = star_graph(3)
        s = initial_state(2)
        moves = set(legal_moves(g, s))
        assert (0, 1) in moves

    def test_contaminated_helper(self):
        g = path_graph(3)
        s = apply_move(g, initial_state(1), 0, 1)
        assert s.contaminated(g.n) == frozenset({2})


class TestBruteForce:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(2), 1),
            (path_graph(8), 1),
            (ring_graph(3), 2),
            (ring_graph(8), 2),
            # star_2 is a 3-path searched from its MIDDLE: one agent cannot
            # leave the centre without abandoning it to the other leaf
            (star_graph(2), 2),
            (star_graph(3), 2),
            (star_graph(5), 2),
            (hypercube_graph(1), 1),
            (hypercube_graph(2), 2),
            (hypercube_graph(3), 4),
            (complete_graph(4), 3),
            (grid_graph(2, 3), 2),
        ],
    )
    def test_known_optima(self, graph, expected):
        assert optimal_search_number(graph) == expected

    def test_star_needs_two_because_one_fails(self):
        assert not solvable_with(star_graph(3), 1)
        assert solvable_with(star_graph(3), 2)

    def test_minimum_moves_path(self):
        # sweeping a path of n nodes with 1 agent takes exactly n-1 moves
        assert minimum_moves(path_graph(6), 1) == 5

    def test_minimum_moves_unsolvable(self):
        assert minimum_moves(star_graph(3), 1) is None

    def test_more_agents_never_hurt(self):
        g = ring_graph(6)
        k = optimal_search_number(g)
        assert solvable_with(g, k + 1)
        assert solvable_with(g, k + 2)

    def test_homebase_can_matter_on_trees(self):
        # a path searched from an end needs 1 agent; from the middle of a
        # spider, more can be needed
        g = tree_graph([0, 0, 0, 1, 2, 3])  # three legs of length 2
        from_center = optimal_search_number(g, homebase=0)
        from_leaf = optimal_search_number(g, homebase=4)
        assert from_center == 2
        assert from_leaf == 2  # still 2: one guards the branch point

    def test_capacity_guard(self):
        import repro.search.optimal as mod

        old = mod._STATE_LIMIT
        mod._STATE_LIMIT = 10
        try:
            with pytest.raises(CapacityError):
                optimal_search_number(hypercube_graph(3))
        finally:
            mod._STATE_LIMIT = old


class TestOptimalSchedule:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(5), ring_graph(5), star_graph(4), hypercube_graph(2), hypercube_graph(3)],
    )
    def test_schedule_verifies(self, graph):
        k = optimal_search_number(graph)
        schedule = optimal_schedule(graph, k)
        assert schedule is not None
        report = ScheduleVerifier(graph).verify(schedule)
        assert report.ok, report.summary()
        assert schedule.team_size == k

    def test_schedule_move_count_is_minimum(self):
        g = ring_graph(6)
        k = optimal_search_number(g)
        schedule = optimal_schedule(g, k)
        assert schedule.total_moves == minimum_moves(g, k)

    def test_unsolvable_returns_none(self):
        assert optimal_schedule(star_graph(3), 1) is None

    def test_metadata(self):
        schedule = optimal_schedule(path_graph(4), 1)
        assert schedule.metadata["graph"] == "path_4"
        assert schedule.metadata["graph_n"] == 4


class TestAgainstPaperStrategies:
    """The paper's strategies use more agents than the small-case optimum —
    the open-problem gap the A1 bench quantifies."""

    def test_h3_gap(self):
        from repro.core.strategy import get_strategy

        optimal = optimal_search_number(hypercube_graph(3))
        clean = get_strategy("clean").run(3).team_size
        visibility = get_strategy("visibility").run(3).team_size
        assert optimal == 4
        assert clean == 5
        assert visibility == 4  # visibility is optimal on H_3!

    def test_h2_gap(self):
        from repro.core.strategy import get_strategy

        assert optimal_search_number(hypercube_graph(2)) == 2
        assert get_strategy("clean").run(2).team_size == 3
        assert get_strategy("visibility").run(2).team_size == 2

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_visibility_is_also_move_optimal_small(self, d):
        """Measured finding: on H_1..H_3 the visibility strategy is optimal
        in BOTH metrics at once — its agent count equals the brute-force
        optimum AND its move count equals the minimum-move solution for
        that team size."""
        from repro.core.strategy import get_strategy

        g = hypercube_graph(d)
        schedule = get_strategy("visibility").run(d)
        k = optimal_search_number(g)
        assert schedule.team_size == k
        assert schedule.total_moves == minimum_moves(g, k)
