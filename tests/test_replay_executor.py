"""Tests for the schedule-on-engine executor (repro.sim.replay)."""

import pytest

from repro.core.strategy import available_strategies, get_strategy
from repro.errors import SimulationError
from repro.sim.replay import execute_schedule_on_engine
from repro.topology.generic import hypercube_graph, tree_graph
from repro.topology.hypercube import Hypercube


class TestAllStrategiesReJudged:
    @pytest.mark.parametrize("name", sorted(set(available_strategies())))
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_engine_verdict_matches(self, name, d):
        schedule = get_strategy(name).run(d)
        result = execute_schedule_on_engine(schedule, Hypercube(d))
        assert result.ok, (name, d, result.summary())
        assert result.total_moves == schedule.total_moves
        assert result.makespan == pytest.approx(schedule.makespan)

    def test_cloning_spawn_tree(self):
        schedule = get_strategy("cloning").run(4)
        result = execute_schedule_on_engine(schedule, Hypercube(4))
        assert result.ok
        assert result.team_size == schedule.team_size
        clones = result.trace.events("clone")
        assert len(clones) == schedule.team_size - 1

    def test_walker_intruder_through_executor(self):
        schedule = get_strategy("visibility").run(4)
        result = execute_schedule_on_engine(schedule, Hypercube(4), intruder="walker")
        assert result.intruder_captured


class TestGenericSchedules:
    def test_tree_schedule(self):
        from repro.search.tree_search import tree_strategy_schedule

        g = tree_graph([0, 0, 1, 1, 2, 2])
        schedule = tree_strategy_schedule(g)
        result = execute_schedule_on_engine(schedule, g)
        assert result.ok

    def test_harper_schedule(self):
        from repro.search.harper import harper_sweep_schedule

        g = hypercube_graph(4)
        result = execute_schedule_on_engine(harper_sweep_schedule(4), g)
        assert result.ok

    def test_optimal_schedule(self):
        from repro.search.optimal import optimal_schedule, optimal_search_number

        g = hypercube_graph(3)
        schedule = optimal_schedule(g, optimal_search_number(g))
        result = execute_schedule_on_engine(schedule, g)
        assert result.ok


class TestFaithfulness:
    def test_broken_script_detected(self):
        """A tampered script (wrong src) raises inside the engine rather
        than silently desyncing."""
        from repro.core.schedule import Move, Schedule

        schedule = Schedule(
            dimension=2,
            strategy="bad-script",
            moves=[
                Move(agent=0, src=0, dst=1, time=1),
                Move(agent=0, src=2, dst=3, time=2),  # agent is actually at 1
            ],
            team_size=1,
        )
        with pytest.raises(SimulationError):
            execute_schedule_on_engine(schedule, Hypercube(2))

    def test_empty_schedule(self):
        from repro.core.schedule import Schedule

        schedule = Schedule(dimension=0, strategy="noop", team_size=1)
        result = execute_schedule_on_engine(schedule, Hypercube(0))
        assert result.all_clean

    def test_failing_schedule_gets_failing_verdict(self):
        """The executor is honest: a recontaminating schedule is executed
        and the engine flags it, matching the schedule verifier."""
        from repro.analysis.verify import verify_schedule
        from repro.core.schedule import Move, Schedule

        schedule = Schedule(
            dimension=2,
            strategy="zigzag",
            moves=[
                Move(agent=0, src=0, dst=1, time=1),
                Move(agent=0, src=1, dst=0, time=2),
                Move(agent=0, src=0, dst=2, time=3),
                Move(agent=0, src=2, dst=3, time=4),
            ],
            team_size=1,
        )
        plane = verify_schedule(schedule)
        engine = execute_schedule_on_engine(schedule, Hypercube(2))
        assert not plane.ok and not engine.ok
        assert plane.monotone == engine.monotone == False  # noqa: E712


class TestCloneParentage:
    def test_tie_broken_by_lowest_agent_id(self):
        """Two agents arrive at the clone's birth node at the same time:
        the lowest agent id must win, not whichever dict order yields."""
        from repro.core.schedule import Move, Schedule
        from repro.sim.replay import clone_parentage

        moves = [
            Move(agent=0, src=0, dst=1, time=1),
            Move(agent=0, src=1, dst=3, time=2),
            Move(agent=1, src=0, dst=2, time=1),
            Move(agent=1, src=2, dst=3, time=2),  # ties agent 0 at node 3, t=2
            Move(agent=2, src=3, dst=1, time=3),  # clone born at node 3
        ]
        schedule = Schedule(
            dimension=2, strategy="tie", moves=moves, team_size=3, uses_cloning=True
        )
        assert clone_parentage(schedule) == {1: 0, 2: 0}

    def test_tie_break_ignores_move_insertion_order(self):
        """Same schedule with the move list (and hence the internal
        per-agent dict) built in reverse order: identical spawn tree."""
        from repro.core.schedule import Move, Schedule
        from repro.sim.replay import clone_parentage

        moves = [
            Move(agent=2, src=3, dst=1, time=3),
            Move(agent=1, src=0, dst=2, time=1),
            Move(agent=1, src=2, dst=3, time=2),
            Move(agent=0, src=0, dst=1, time=1),
            Move(agent=0, src=1, dst=3, time=2),
        ]
        schedule = Schedule(
            dimension=2, strategy="tie", moves=moves, team_size=3, uses_cloning=True
        )
        assert clone_parentage(schedule) == {1: 0, 2: 0}

    def test_strict_latest_arrival_wins_over_earlier(self):
        from repro.core.schedule import Move, Schedule
        from repro.sim.replay import clone_parentage

        moves = [
            Move(agent=0, src=0, dst=1, time=1),  # arrives at 1 early...
            Move(agent=0, src=1, dst=3, time=2),  # ...then leaves
            Move(agent=1, src=0, dst=1, time=2),  # latest arrival at node 1
            Move(agent=2, src=1, dst=3, time=3),  # clone born at node 1
        ]
        schedule = Schedule(
            dimension=2, strategy="latest", moves=moves, team_size=3, uses_cloning=True
        )
        assert clone_parentage(schedule)[2] == 1

    def test_tied_schedule_replays_on_engine(self):
        """The tie-broken spawn tree is executable: the engine accepts the
        CloneSelf at node 3 because agent 0 (the chosen parent) is there."""
        from repro.core.schedule import Move, Schedule

        moves = [
            Move(agent=0, src=0, dst=1, time=1),
            Move(agent=0, src=1, dst=3, time=2),
            Move(agent=1, src=0, dst=2, time=1),
            Move(agent=1, src=2, dst=3, time=2),
            Move(agent=2, src=3, dst=1, time=3),
        ]
        schedule = Schedule(
            dimension=2, strategy="tie", moves=moves, team_size=3, uses_cloning=True
        )
        result = execute_schedule_on_engine(
            schedule, Hypercube(2), intruder=None, check_contiguity=False
        )
        assert result.all_clean
