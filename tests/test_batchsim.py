"""The scenario-batch Monte Carlo engine versus its scalar twin.

The batch engine's whole value proposition is that scoring a scenario
against a shared :class:`~repro.fastpath.batchsim.ScenarioTimeline` is
*semantically identical* to running that scenario through
:class:`~repro.sim.engine.Engine` — just thousands of times cheaper.
These tests prove the identity the expensive way: scripted engine
replays with event subscribers recording per-move masks and capture
times, compared move-for-move and unit-for-unit against the batch
path, over randomized (strategy, dimension, homebase, intruder seed)
scenarios.  The inert-fugitive policy is additionally checked against
an independent set-based reference driven by the *engine's* recorded
masks, and against a hand-built two-pocket schedule whose fugitives
are provably captured at different times.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schedule import Move, Schedule
from repro.core.strategy import get_strategy
from repro.errors import ScheduleError, SimulationError
from repro.fastpath.batchsim import (
    BatchResult,
    BatchScenarioSpec,
    BatchStats,
    ScenarioTimeline,
    _percentile,
    _run_walkers,
    replay_order,
    run_batch,
)
from repro.fastpath.compiled import CompiledSchedule
from repro.sim import replay as replay_mod
from repro.sim.engine import Engine
from repro.sim.scheduling import UnitDelay
from repro.topology.hypercube import Hypercube

FAST = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- #
# the scalar twin: scripted engine replay with an event recorder
# --------------------------------------------------------------------- #


class EngineRecorder:
    """Replay a schedule on the engine, recording the move stream."""

    def __init__(self, schedule, topology, *, intruder="reachable", seed=0, count=2):
        per_agent = {}
        for m in schedule.moves:
            per_agent.setdefault(m.agent, []).append(m)
        for moves in per_agent.values():
            moves.sort(key=lambda m: m.time)
        behaviors = [replay_mod._scripted(mv) for _, mv in sorted(per_agent.items())]
        behaviors += [replay_mod._terminator] * max(
            schedule.team_size - len(per_agent), 0
        )
        self.engine = Engine(
            topology,
            behaviors or [replay_mod._terminator],
            homebase=schedule.homebase,
            delay=UnitDelay(),
            global_clock=True,
            intruder=intruder,
            intruder_seed=seed,
            intruder_count=count,
        )
        self.moves = []  # (time, src, dst, clean_mask, guard_mask)
        self.capture_time = None

        def record(event):
            if event.kind != "move":
                return
            # the timeline's "clean" is the engine's decontaminated
            # (clean-or-guarded) region
            self.moves.append(
                (
                    event.time,
                    event.src,
                    event.node,
                    event.clean_mask | event.guard_mask,
                    event.guard_mask,
                )
            )
            if (
                self.capture_time is None
                and self.engine.intruder is not None
                and self.engine.intruder.captured
            ):
                self.capture_time = event.time

        self.engine.subscribe(record)
        self.result = self.engine.run()

    def per_unit(self):
        """(times, clean_after, guard_after, arrivals) per completed unit."""
        times, cleans, guards, arrivals = [], [], [], []
        for t, _src, dst, clean, guard in self.moves:
            t = int(t)
            if not times or times[-1] != t:
                times.append(t)
                cleans.append(clean)
                guards.append(guard)
                arrivals.append(0)
            else:
                cleans[-1] = clean
                guards[-1] = guard
            arrivals[-1] |= 1 << dst
        return times, cleans, guards, arrivals


STRATEGIES = ["clean", "visibility", "synchronous", "level-sweep"]


# --------------------------------------------------------------------- #
# timeline == engine, move for move and unit for unit
# --------------------------------------------------------------------- #


class TestTimelineVsEngine:
    @pytest.mark.parametrize("name", STRATEGIES)
    @pytest.mark.parametrize("homebase", [0, 3])
    def test_masks_and_completion_match_engine(self, name, homebase):
        d = 4
        schedule = get_strategy(name).run(d).translated(homebase)
        topo = Hypercube(d)
        timeline = ScenarioTimeline(CompiledSchedule.from_schedule(schedule), homebase, topo)
        rec = EngineRecorder(schedule, topo)
        times, cleans, guards, arrivals = rec.per_unit()

        assert timeline.unit_times == times
        assert timeline.clean_after == cleans
        assert timeline.guard_after == guards
        assert timeline.arrivals == arrivals
        assert timeline.final_clean == cleans[-1]
        assert timeline.final_guard == guards[-1]
        assert not timeline.recontaminated
        # the reachable policy's capture unit is the engine's capture time
        assert rec.result.intruder_captured
        assert timeline.unit_times[timeline.reachable_capture_index()] == rec.capture_time

    def test_replay_order_reproduces_engine_move_stream(self):
        # the walker policies observe after every *engine-order* move —
        # replay_order must reproduce that order exactly, not column order
        for name in ("clean", "visibility", "synchronous"):
            schedule = get_strategy(name).run(4)
            topo = Hypercube(4)
            compiled = CompiledSchedule.from_schedule(schedule)
            order = replay_order(compiled)
            rec = EngineRecorder(schedule, topo)
            engine_stream = [(src, dst) for _, src, dst, _, _ in rec.moves]
            batch_stream = [(compiled.srcs[j], compiled.dsts[j]) for j in order]
            assert batch_stream == engine_stream, name

    def test_replay_order_rejects_cloning(self):
        compiled = CompiledSchedule.from_schedule(get_strategy("cloning").run(3))
        with pytest.raises(SimulationError):
            replay_order(compiled)

    @given(
        name=st.sampled_from(["clean", "visibility", "synchronous"]),
        d=st.integers(min_value=3, max_value=5),
        homebase=st.integers(min_value=0, max_value=7),
        iseed=st.integers(min_value=0, max_value=2**32 - 1),
        policy=st.sampled_from(["walker", "walkers"]),
        count=st.integers(min_value=1, max_value=3),
    )
    @FAST
    def test_walker_policies_match_engine(self, name, d, homebase, iseed, policy, count):
        schedule = get_strategy(name).run(d).translated(homebase)
        topo = Hypercube(d)
        n = topo.n
        timeline = ScenarioTimeline(CompiledSchedule.from_schedule(schedule), homebase, topo)

        irng = random.Random(iseed)
        if policy == "walker":
            starts, rngs, engine_count = [homebase ^ (n - 1)], [irng], 2
        else:
            contaminated = [x for x in range(n) if x != homebase]
            starts = irng.sample(contaminated, count)
            rngs = [random.Random(irng.getrandbits(64)) for _ in starts]
            engine_count = count
        caught, cap_index, _moves = _run_walkers(timeline, starts, rngs, None)
        batch_unit = timeline.unit_times[cap_index] if caught else None

        rec = EngineRecorder(
            schedule, topo, intruder=policy, seed=iseed, count=engine_count
        )
        assert caught == rec.result.intruder_captured
        assert batch_unit == rec.capture_time


# --------------------------------------------------------------------- #
# the inert fugitive
# --------------------------------------------------------------------- #


def _reference_inert_capture(recorder, seed, topo):
    """Set-based possible-location evolution over the ENGINE's recorded
    masks — an implementation of arXiv:0802.3512's inert-fugitive rule
    independent of the batch engine's bitset kernels."""
    times, cleans, guards, arrivals = recorder.per_unit()
    nodes = set(range(topo.n))
    possible = {seed}
    for t, clean, guard, arrived in zip(times, cleans, guards, arrivals):
        contam = {v for v in nodes if not clean >> v & 1}
        guarded = {v for v in nodes if guard >> v & 1}
        arrived_at = {v for v in nodes if arrived >> v & 1}
        stay = {
            v for v in possible if v not in arrived_at and v in contam and v not in guarded
        }
        fled = set()
        disturbed = possible & arrived_at
        if disturbed:
            frontier = {
                nb
                for v in disturbed
                for nb in topo.neighbors(v)
                if nb not in guarded
            }
            reached = set()
            queue = list(frontier)
            while queue:
                v = queue.pop()
                if v in reached:
                    continue
                reached.add(v)
                queue.extend(nb for nb in topo.neighbors(v) if nb not in guarded)
            fled = reached & contam
        possible = stay | fled
        if not possible:
            return t
    return -1


def two_pocket_schedule():
    """A hand sweep of H_3 capturing different seeds at different times.

    Pocket {1} is caged first — its neighbours 3 and 5 are cleaned via
    the 2- and 4-routes and kept guarded — so its fugitive is cornered
    and captured at unit 3, while the far pocket {6, 7} stays
    contaminated until units 4-5.
    """
    moves = [
        Move(agent=1, src=0, dst=2, time=1),
        Move(agent=3, src=0, dst=2, time=1),
        Move(agent=2, src=0, dst=4, time=1),
        Move(agent=4, src=0, dst=4, time=1),
        Move(agent=1, src=2, dst=3, time=2),
        Move(agent=2, src=4, dst=5, time=2),
        Move(agent=5, src=0, dst=1, time=3),
        Move(agent=1, src=3, dst=7, time=4),
        Move(agent=4, src=4, dst=6, time=5),
    ]
    return Schedule(dimension=3, strategy="two-pocket", moves=moves, team_size=6)


class TestInertFugitive:
    @pytest.mark.parametrize("name", ["clean", "visibility", "level-sweep"])
    @pytest.mark.parametrize("d", [3, 4])
    def test_matches_setwise_reference_on_engine_masks(self, name, d):
        schedule = get_strategy(name).run(d)
        topo = Hypercube(d)
        timeline = ScenarioTimeline(CompiledSchedule.from_schedule(schedule), 0, topo)
        rec = EngineRecorder(schedule, topo)
        for seed in range(1, topo.n):
            index = timeline.inert_capture_index(seed)
            batch_unit = timeline.unit_times[index] if index >= 0 else -1
            assert batch_unit == _reference_inert_capture(rec, seed, topo), (name, d, seed)

    def test_two_pocket_schedule_gives_different_capture_times(self):
        timeline = ScenarioTimeline(
            CompiledSchedule.from_schedule(two_pocket_schedule()), 0, Hypercube(3)
        )
        assert timeline.complete_index >= 0 and not timeline.recontaminated
        unit = lambda s: timeline.unit_times[timeline.inert_capture_index(s)]  # noqa: E731
        assert unit(1) == 3  # cornered in the caged pocket
        assert unit(6) == 5 and unit(7) == 5  # survive until the far pocket dies
        assert unit(1) < unit(6)

    def test_homebase_adjacent_seed_flees_instead_of_dying_with_its_node(self):
        # the regression the batch engine exists to expose: a fugitive
        # seeded next to the homebase is NOT captured when its node is
        # cleaned in the very first unit — it flees through unguarded
        # space and survives until the sweep's last pocket vanishes
        d = 4
        timeline = ScenarioTimeline(
            CompiledSchedule.from_schedule(get_strategy("clean").run(d)), 0, Hypercube(d)
        )
        seed = 1  # adjacent to homebase 0
        node_cleaned_unit = next(
            t
            for t, clean in zip(timeline.unit_times, timeline.clean_after)
            if clean >> seed & 1
        )
        capture_unit = timeline.unit_times[timeline.inert_capture_index(seed)]
        last_unit = timeline.unit_times[timeline.complete_index]
        assert node_cleaned_unit < capture_unit
        assert capture_unit == last_unit

    def test_seed_validation(self):
        timeline = ScenarioTimeline(
            CompiledSchedule.from_schedule(get_strategy("visibility").run(3)), 0
        )
        with pytest.raises(SimulationError):
            timeline.inert_capture_index(0)  # the homebase hosts no fugitive
        with pytest.raises(ScheduleError):
            timeline.inert_capture_index(8)


# --------------------------------------------------------------------- #
# campaigns: determinism, sharding, serialization
# --------------------------------------------------------------------- #


class TestCampaigns:
    SPEC = BatchScenarioSpec(
        dimension=4,
        strategy="visibility",
        trials=30,
        intruder="inert",
        seeds_per_trial=2,
        delay="random",
        rotate_homebase=True,
        rng_seed=42,
    )

    def test_sharded_windows_merge_to_the_serial_run(self):
        full = run_batch(self.SPEC)
        parts = [
            run_batch(self.SPEC, start=0, count=11),
            run_batch(self.SPEC, start=11, count=4),
            run_batch(self.SPEC, start=15, count=15),
        ]
        merged = BatchResult.merge(parts)
        for column in (
            "homebases",
            "captured",
            "capture_units",
            "capture_walls",
            "duration_walls",
            "moves_to_capture",
        ):
            assert getattr(merged, column) == getattr(full, column), column
        assert merged.verdict == full.verdict
        assert "missing_trials" not in merged.counters

    def test_merge_accounts_missing_shards(self):
        parts = [
            run_batch(self.SPEC, start=0, count=10),
            run_batch(self.SPEC, start=20, count=10),
        ]
        merged = BatchResult.merge(parts)
        assert merged.count == 20
        assert merged.counters["missing_trials"] == 10

    def test_result_payload_round_trip(self):
        result = run_batch(self.SPEC, start=5, count=7)
        clone = BatchResult.from_payload(result.to_payload())
        assert clone.spec == result.spec
        assert clone.start == result.start
        assert clone.capture_units == result.capture_units
        assert clone.summary() == result.summary()

    def test_batch_cell_task_runs_one_shard(self):
        from repro.exec.jobs import TaskContext, get_task

        payload = {"spec": self.SPEC.to_payload(), "start": 3, "count": 9}
        out = get_task("batch_cell")(payload, TaskContext(key="k", attempt=0))
        shard = BatchResult.from_payload(out)
        direct = run_batch(self.SPEC, start=3, count=9)
        assert shard.capture_units == direct.capture_units
        assert shard.homebases == direct.homebases

    def test_parallel_montecarlo_merges_to_serial(self):
        from repro.exec import ExecutorConfig, montecarlo_jobs, parallel_montecarlo

        jobs = montecarlo_jobs(self.SPEC, 4)
        assert [j.payload["start"] for j in jobs] == [0, 8, 16, 23]
        assert sum(j.payload["count"] for j in jobs) == self.SPEC.trials
        result, outcomes = parallel_montecarlo(
            self.SPEC, ExecutorConfig(jobs=2), shards=4
        )
        assert all(o.ok for o in outcomes)
        serial = run_batch(self.SPEC)
        assert result.capture_units == serial.capture_units
        assert result.captured == serial.captured

    def test_stats_mirror_into_metrics_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        stats = BatchStats()
        result = run_batch(
            BatchScenarioSpec(dimension=3, trials=8, intruder="inert", rng_seed=1),
            stats=stats,
            metrics=registry,
        )
        assert result.counters["trials"] == 8
        assert result.counters["captures"] + result.counters["escapes"] == 8
        snapshot = registry.snapshot()["counters"]
        assert snapshot["fastpath.batchsim.trials"] == 8

    def test_delay_models_stretch_walls_but_not_units(self):
        base = BatchScenarioSpec(dimension=4, trials=12, intruder="reachable", rng_seed=7)
        unit = run_batch(base)
        slow = run_batch(
            BatchScenarioSpec(
                dimension=4,
                trials=12,
                intruder="reachable",
                delay="adversarial",
                delay_factor=5,
                rng_seed=7,
            )
        )
        assert unit.capture_units == slow.capture_units
        assert all(s >= u for s, u in zip(slow.capture_walls, unit.capture_walls))
        assert any(s > u for s, u in zip(slow.capture_walls, unit.capture_walls))

    def test_cloning_supports_reachable_but_rejects_walkers(self):
        spec = BatchScenarioSpec(
            dimension=3, strategy="cloning", trials=3, intruder="reachable"
        )
        result = run_batch(spec)
        assert result.capture_rate() == 1.0
        with pytest.raises(SimulationError):
            run_batch(
                BatchScenarioSpec(
                    dimension=3, strategy="cloning", trials=3, intruder="walker"
                )
            )

    def test_spec_validation_and_round_trip(self):
        with pytest.raises(ScheduleError):
            BatchScenarioSpec(dimension=3, trials=-1)
        with pytest.raises(ScheduleError):
            BatchScenarioSpec(dimension=3, intruder="ghost")
        with pytest.raises(ScheduleError):
            BatchScenarioSpec(dimension=3, delay="random", delay_low=3, delay_high=2)
        spec = BatchScenarioSpec(dimension=5, delay="adversarial", rotate_homebase=True)
        assert BatchScenarioSpec.from_payload(spec.to_payload()) == spec
        with pytest.raises(ScheduleError):
            BatchScenarioSpec.from_payload({**spec.to_payload(), "bogus": 1})

    def test_window_validation(self):
        spec = BatchScenarioSpec(dimension=3, trials=5)
        with pytest.raises(ScheduleError):
            run_batch(spec, start=3, count=4)

    def test_percentiles_are_nearest_rank(self):
        values = list(range(1, 101))
        assert _percentile(values, 50) == 50
        assert _percentile(values, 99) == 99
        assert _percentile([7], 90) == 7
