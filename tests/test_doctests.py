"""Run the doctest examples embedded in the public-facing modules.

Keeps the README-style snippets in docstrings honest: if an example in a
docstring drifts from the implementation, this suite fails.
"""

import doctest

import pytest

import repro
import repro._bitops
import repro.analysis.lower_bounds
import repro.topology.broadcast_tree
import repro.topology.heap_queue
import repro.topology.hypercube
import repro.viz.class_render
import repro.viz.tree_render

MODULES = [
    repro._bitops,
    repro.topology.hypercube,
    repro.topology.broadcast_tree,
    repro.topology.heap_queue,
    repro.viz.tree_render,
    repro.viz.class_render,
    repro.analysis.lower_bounds,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"


def test_package_docstring_example():
    """The quickstart in repro/__init__.py, executed literally."""
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 3


def test_strategy_registry_doctest():
    import repro.core.strategy as mod

    results = doctest.testmod(mod, verbose=False)
    assert results.failed == 0
