"""Tests for the concurrency-safety rules (RPR340–RPR360).

The write rules only apply inside ``fastpath``/``exec`` directory
layers; each has a catching case (torn-write window, mis-located tmp
file, layout drift without a tag bump) and a passing case (the atomic
publish idiom, append-mode logs, drift accompanied by a bump).
"""

import ast

import pytest

from repro.lint import analyze_source
from repro.lint.concurrency import check_concurrency
from repro.lint.schema import (
    check_schema_drift,
    extract_schemas,
    write_schema_baseline,
)

ATOMIC_PUBLISH = (
    "import json\n"
    "import os\n"
    "import tempfile\n"
    "def publish(path, payload, root):\n"
    "    fd, tmp = tempfile.mkstemp(dir=root)\n"
    "    with os.fdopen(fd, 'w') as fh:\n"
    "        json.dump(payload, fh)\n"
    "    os.replace(tmp, path)\n"
)


def _codes(source, path="src/repro/fastpath/mod.py"):
    return [f.code for f in check_concurrency(ast.parse(source), path)]


class TestBareSharedWrite:
    def test_bare_open_w_flagged(self):
        src = "def save(path, data):\n    with open(path, 'w') as fh:\n        fh.write(data)\n"
        assert _codes(src) == ["RPR340"]

    def test_write_text_flagged(self):
        src = "def save(path, data):\n    path.write_text(data)\n"
        assert _codes(src) == ["RPR340"]

    def test_write_bytes_flagged(self):
        src = "def save(path, data):\n    path.write_bytes(data)\n"
        assert _codes(src) == ["RPR340"]

    def test_atomic_publish_is_clean(self):
        assert _codes(ATOMIC_PUBLISH) == []

    def test_append_mode_is_exempt(self):
        # append-only JSONL logs are torn-tail tolerant by design
        src = "def log(path, line):\n    with open(path, 'a') as fh:\n        fh.write(line)\n"
        assert _codes(src) == []

    def test_read_mode_is_exempt(self):
        src = "def load(path):\n    with open(path) as fh:\n        return fh.read()\n"
        assert _codes(src) == []

    def test_dynamic_mode_gets_benefit_of_doubt(self):
        src = "def save(path, data, mode):\n    with open(path, mode) as fh:\n        fh.write(data)\n"
        assert _codes(src) == []

    @pytest.mark.parametrize(
        "path", ["src/repro/core/schedule.py", "examples/custom.py", "tools/gen.py"]
    )
    def test_rule_scoped_to_fastpath_and_exec_layers(self, path):
        src = "def save(path, data):\n    path.write_text(data)\n"
        assert _codes(src, path=path) == []

    def test_exec_layer_is_covered(self):
        src = "def save(path, data):\n    path.write_text(data)\n"
        assert _codes(src, path="src/repro/exec/out.py") == ["RPR340"]


class TestTmpfileColocation:
    def test_mkstemp_without_dir_in_publishing_function_flagged(self):
        src = (
            "import os\n"
            "import tempfile\n"
            "def publish(path, data):\n"
            "    fd, tmp = tempfile.mkstemp()\n"
            "    with os.fdopen(fd, 'w') as fh:\n"
            "        fh.write(data)\n"
            "    os.replace(tmp, path)\n"
        )
        assert _codes(src) == ["RPR350"]

    def test_mkstemp_with_dir_is_clean(self):
        assert _codes(ATOMIC_PUBLISH) == []

    def test_mkstemp_without_publish_is_not_this_rule(self):
        # scratch files that are never renamed into place have no EXDEV risk
        src = (
            "import tempfile\n"
            "def scratch():\n"
            "    fd, tmp = tempfile.mkstemp()\n"
            "    return tmp\n"
        )
        assert _codes(src) == []


class TestSchemaDrift:
    COMPILED = (
        "SCHEMA_VERSION = 'compiled-schedule/v1'\n"
        "FORMAT_VERSION = 1\n"
        "COLUMN_NAMES = ['time', 'agent', 'src', 'dst']\n"
    )

    def _trees(self, compiled_src):
        return {"src/repro/fastpath/compiled.py": ast.parse(compiled_src)}

    def test_extract_reads_columns_and_tags(self):
        records = extract_schemas(self._trees(self.COMPILED))
        assert [r["kind"] for r in records] == ["compiled_schedule"]
        assert records[0]["version_tag"] == "compiled-schedule/v1+format1"
        assert records[0]["layout"] == ["time", "agent", "src", "dst"]

    def test_drift_without_bump_fires(self, tmp_path):
        baseline = tmp_path / "schema_baseline.json"
        write_schema_baseline(self._trees(self.COMPILED), baseline)
        drifted = self.COMPILED.replace("'dst'", "'dst', 'phase'")
        findings = check_schema_drift(self._trees(drifted), baseline)
        assert [f.code for f in findings] == ["RPR360"]
        assert findings[0].symbol == "compiled_schedule"

    def test_drift_with_bump_is_clean(self, tmp_path):
        baseline = tmp_path / "schema_baseline.json"
        write_schema_baseline(self._trees(self.COMPILED), baseline)
        bumped = self.COMPILED.replace("'dst'", "'dst', 'phase'").replace(
            "FORMAT_VERSION = 1", "FORMAT_VERSION = 2"
        )
        assert check_schema_drift(self._trees(bumped), baseline) == []

    def test_unchanged_layout_is_clean(self, tmp_path):
        baseline = tmp_path / "schema_baseline.json"
        write_schema_baseline(self._trees(self.COMPILED), baseline)
        assert check_schema_drift(self._trees(self.COMPILED), baseline) == []

    def test_missing_baseline_is_clean(self, tmp_path):
        # a repo without a committed expectation cannot drift from it
        findings = check_schema_drift(
            self._trees(self.COMPILED), tmp_path / "nope.json"
        )
        assert findings == []

    def test_checkpoint_record_pairing(self, tmp_path):
        jobs = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class JobOutcome:\n"
            "    key: str\n"
            "    status: str\n"
        )
        ckpt = "CHECKPOINT_SCHEMA = 'repro-exec-checkpoint/v1'\n"
        trees = {
            "src/repro/exec/jobs.py": ast.parse(jobs),
            "src/repro/exec/checkpoint.py": ast.parse(ckpt),
        }
        baseline = tmp_path / "schema_baseline.json"
        write_schema_baseline(trees, baseline)
        drifted = dict(trees)
        drifted["src/repro/exec/jobs.py"] = ast.parse(jobs + "    retries: int\n")
        findings = check_schema_drift(drifted, baseline)
        assert [f.code for f in findings] == ["RPR360"]
        assert findings[0].symbol == "checkpoint_record"


class TestSingleModuleEntry:
    def test_analyze_source_applies_write_rule_by_path(self):
        src = "def save(path, data):\n    path.write_text(data)\n"
        assert [f.code for f in analyze_source(src, "src/repro/exec/out.py")] == ["RPR340"]
        assert analyze_source(src, "src/repro/viz/out.py") == []
