"""Tests for JSONL event streaming and the report/watch CLI subcommands."""

import io
import json

from repro.cli import main as cli_main
from repro.obs import JsonlStreamer
from repro.obs.events import MoveEvent, WaitEvent
from repro.protocols.visibility_protocol import run_visibility_protocol


class TestJsonlStreamer:
    def test_one_line_per_event(self):
        buf = io.StringIO()
        streamer = JsonlStreamer(buf)
        streamer(WaitEvent(time=1.0, agent=0, node=2, why="squad"))
        streamer(MoveEvent(time=2.0, agent=0, node=3, src=2))
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2 == streamer.count
        first = json.loads(lines[0])
        assert first["kind"] == "wait" and first["why"] == "squad"
        second = json.loads(lines[1])
        assert second["kind"] == "move" and second["src"] == 2

    def test_mask_fields_hex(self):
        buf = io.StringIO()
        streamer = JsonlStreamer(buf, mask_fields=True)
        streamer(MoveEvent(time=1.0, agent=0, node=1, src=0, clean_mask=5, guard_mask=2))
        record = json.loads(buf.getvalue())
        assert record["clean_mask"] == "0x5"
        assert record["guard_mask"] == "0x2"

    def test_masks_omitted_by_default(self):
        buf = io.StringIO()
        JsonlStreamer(buf)(MoveEvent(time=1.0, agent=0, node=1, src=0, clean_mask=5))
        record = json.loads(buf.getvalue())
        assert "clean_mask" not in record

    def test_write_record(self):
        buf = io.StringIO()
        streamer = JsonlStreamer(buf)
        streamer.write_record({"record": "manifest", "schema": "x"})
        assert json.loads(buf.getvalue()) == {"record": "manifest", "schema": "x"}

    def test_streaming_a_live_run(self):
        buf = io.StringIO()
        streamer = JsonlStreamer(buf, flush_every=0)
        result = run_visibility_protocol(3, subscribers=[streamer], trace_maxlen=8)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert streamer.count == len(lines)
        moves = [r for r in lines if r["kind"] == "move"]
        assert len(moves) == result.total_moves
        # the streamer saw everything even though the trace kept a window
        assert len(result.trace) == 8


class TestWatchCli:
    def test_watch_writes_jsonl_with_manifest_tail(self, tmp_path):
        out = tmp_path / "events.jsonl"
        code = cli_main(
            ["watch", "-d", "3", "-p", "visibility", "-o", str(out)]
        )
        assert code == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["kind"] == "run-start"
        assert lines[-1]["record"] == "manifest"
        assert lines[-1]["schema"] == "repro-manifest/v1"
        assert lines[-2]["kind"] == "run-end"

    def test_watch_kind_filter(self, tmp_path, capsys):
        out = tmp_path / "moves.jsonl"
        code = cli_main(
            ["watch", "-d", "3", "-p", "clean", "-o", str(out), "--kinds", "move"]
        )
        assert code == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {r.get("kind") for r in lines[:-1]}
        assert kinds == {"move"}

    def test_watch_stdout(self, capsys):
        code = cli_main(["watch", "-d", "2", "-p", "visibility"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert json.loads(lines[0])["kind"] == "run-start"


class TestReportCli:
    def test_report_renders_snapshot(self, capsys):
        code = cli_main(["report", "-d", "4", "-p", "clean"])
        assert code == 0
        out = capsys.readouterr().out
        assert "moves_total" in out
        assert "clean_nodes" in out
        assert "manifest: repro-manifest/v1" in out

    def test_report_json_export(self, tmp_path, capsys):
        target = tmp_path / "snap.json"
        code = cli_main(
            ["report", "-d", "3", "-p", "visibility", "--json", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["manifest"]["schema"] == "repro-manifest/v1"
        assert payload["metrics"]["counters"]["moves_total"] == 8

    def test_report_probes_off(self, capsys):
        assert cli_main(["report", "-d", "3", "-p", "clean", "--probes", "off"]) == 0
