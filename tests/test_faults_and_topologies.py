"""Crash-fault robustness and the extra interconnection topologies."""

import pytest

from repro.analysis.verify import ScheduleVerifier
from repro.errors import TopologyError
from repro.protocols.clean_protocol import run_clean_protocol
from repro.protocols.visibility_protocol import visibility_agent
from repro.search.frontier_sweep import bfs_boundary_width, frontier_sweep_schedule
from repro.sim.engine import Engine
from repro.topology.generic import cube_connected_cycles, folded_hypercube
from repro.topology.hypercube import Hypercube


class TestCrashFaults:
    """The paper assumes reliable agents; under crash-stop faults its
    strategies keep *safety* (monotone, contiguous) but lose *liveness*
    (reported deadlock) — measured, not assumed."""

    @pytest.mark.parametrize("victim", [0, 1, 3])
    def test_visibility_crash_is_safe_but_stuck(self, victim):
        engine = Engine(
            Hypercube(3),
            [visibility_agent] * 4,
            visibility=True,
            fault_plan={victim: 3},
        )
        result = engine.run()
        assert not result.ok
        assert result.deadlocked
        assert result.monotone  # safety survives the crash
        assert result.contiguous
        assert len(result.trace.events("crash")) == 1

    def test_crash_after_completion_is_harmless(self):
        """A generous budget never triggers: the run completes normally."""
        engine = Engine(
            Hypercube(3),
            [visibility_agent] * 4,
            visibility=True,
            fault_plan={0: 10_000},
        )
        result = engine.run()
        assert result.ok
        assert not result.trace.events("crash")

    def test_clean_synchronizer_crash(self):
        """Killing the synchronizer freezes Algorithm CLEAN mid-flight —
        still monotone, still contiguous."""
        from repro.analysis.formulas import clean_peak_agents
        from repro.protocols.clean_protocol import follower_agent, synchronizer_agent

        d = 3
        team = clean_peak_agents(d)
        engine = Engine(
            Hypercube(d),
            [synchronizer_agent] + [follower_agent] * (team - 1),
            fault_plan={0: 25},
        )
        result = engine.run()
        assert not result.ok
        assert result.monotone
        assert result.deadlocked

    def test_multiple_crashes(self):
        engine = Engine(
            Hypercube(4),
            [visibility_agent] * 8,
            visibility=True,
            fault_plan={2: 4, 5: 4},
        )
        result = engine.run()
        assert result.monotone
        assert len(result.trace.events("crash")) == 2


class TestFoldedHypercube:
    def test_shape(self):
        g = folded_hypercube(4)
        assert g.n == 16
        assert all(g.degree(v) == 5 for v in g.nodes())  # d + 1
        assert g.has_edge(0, 15)  # the antipodal chord

    def test_frontier_sweep_cleans_it(self):
        g = folded_hypercube(4)
        schedule = frontier_sweep_schedule(g)
        report = ScheduleVerifier(g).verify(schedule)
        assert report.ok
        # the chords enlarge the boundary: more guards than on plain H_4
        from repro.topology.generic import hypercube_graph

        assert bfs_boundary_width(g) >= bfs_boundary_width(hypercube_graph(4))

    def test_small_folded_cube_optimum(self):
        from repro.search.optimal import optimal_search_number

        # FQ_2 is K_4: needs n - 1 = 3 agents
        assert optimal_search_number(folded_hypercube(2)) == 3


class TestCubeConnectedCycles:
    def test_shape(self):
        g = cube_connected_cycles(3)
        assert g.n == 24
        assert all(g.degree(v) == 3 for v in g.nodes())
        assert g.is_connected()

    def test_dimension_guard(self):
        with pytest.raises(TopologyError):
            cube_connected_cycles(2)

    def test_frontier_sweep_cleans_it(self):
        g = cube_connected_cycles(3)
        schedule = frontier_sweep_schedule(g)
        report = ScheduleVerifier(g).verify(schedule)
        assert report.ok, report.summary()

    def test_bounded_degree_needs_few_guards(self):
        """Constant degree keeps the BFS boundary (and hence the generic
        sweep's team) far below the hypercube's."""
        from repro.topology.generic import hypercube_graph

        ccc = bfs_boundary_width(cube_connected_cycles(4))
        cube = bfs_boundary_width(hypercube_graph(6))  # comparable n (64)
        assert ccc < cube

    def test_protocol_cleans_ccc(self):
        from repro.protocols.frontier_protocol import run_frontier_protocol

        result = run_frontier_protocol(cube_connected_cycles(3))
        assert result.ok, result.summary()
