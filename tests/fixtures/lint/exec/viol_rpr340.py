"""Fixture: torn-write window publishing a shared result file (RPR340)."""

import json


def publish_results(path, rows):
    """Rewrites the shared file in place — readers can observe a torn file."""
    with open(path, "w") as fh:
        json.dump(rows, fh)
