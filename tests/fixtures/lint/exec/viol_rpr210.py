"""RPR210 fixture: an executor module importing the CLI frontend."""

from repro.cli import main


def render_table(rows) -> int:
    """Render via the CLI (the import above is the violation, not this)."""
    return main(["sweep", "-d", "3"])
