"""RPR250 fixture: a module importing numpy outside the kernel seam."""

import numpy as np


def fast_popcount(values):
    """Vectorized popcount (the direct numpy import is the violation)."""
    return np.bitwise_count(np.asarray(values, dtype="uint64"))
