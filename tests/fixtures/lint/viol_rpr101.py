"""RPR101 fixture: yields ``See`` without declaring ``visibility``."""

from repro.protocols.base import ProtocolModel
from repro.sim.agent import Move, See, Terminate

MODEL = ProtocolModel()


def peeking_agent(ctx):
    """Looks at the neighbours in a model that grants no visibility."""
    states = yield See()
    if states:
        yield Move(ctx.node ^ 1)
    yield Terminate()
