"""RPR104 fixture: declares ``cloning`` but never reaches ``CloneSelf``."""

from repro.protocols.base import ProtocolModel
from repro.sim.agent import Move, Terminate

MODEL = ProtocolModel(cloning=True)


def modest_agent(ctx):
    """Only ever walks — the declared cloning power is dead weight."""
    yield Move(ctx.node ^ 1)
    yield Terminate()
