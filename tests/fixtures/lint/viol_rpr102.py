"""RPR102 fixture: yields ``CloneSelf`` without declaring ``cloning``."""

from repro.protocols.base import ProtocolModel, smaller_all_safe
from repro.sim.agent import CloneSelf, Move, Terminate, WaitUntil

MODEL = ProtocolModel(visibility=True)


def budding_agent(ctx):
    """Clones itself although the declared model only grants visibility."""
    yield WaitUntil(smaller_all_safe(ctx.dimension, ctx.node))
    yield CloneSelf(budding_agent)
    yield Move(ctx.node ^ 1)
    yield Terminate()
