"""Fixture: a suppression whose finding is long gone (RPR010)."""

TOTAL = sum(range(10))  # repro-lint: disable=RPR330
