"""Fixture: every generation-steering knob appears in ``cache_params``."""

from repro.core.strategy import Strategy


class KeyedStrategy(Strategy):
    """``fanout`` steers generation and is part of the cache key; the
    memo dict is internal state assigned from a constant, not a knob."""

    def __init__(self, fanout=2):
        self._fanout = fanout
        self._memo = {}

    def generate(self, graph, homebase=0):
        return [homebase ^ (1 << (level % graph.dimension)) for level in range(self._fanout)]

    def cache_params(self):
        return {"fanout": self._fanout}
