"""A well-formed Section 4 protocol: the clean fixture for ``repro-lint``.

Declares exactly the capabilities it reaches (visibility, through the
``smaller_all_safe`` helper), communicates only through the action
vocabulary, and stores memory through the accounted ``ctx.remember``.
"""

from repro.protocols.base import (
    ProtocolModel,
    increment,
    smaller_all_safe,
)
from repro.sim.agent import Move, Terminate, UpdateWhiteboard, WaitUntil

MODEL = ProtocolModel(visibility=True)


def tidy_agent(ctx):
    """Registers, waits for safety, walks one edge, and guards there."""
    yield UpdateWhiteboard(increment("count"))
    yield WaitUntil(
        smaller_all_safe(ctx.dimension, ctx.node),
        description="smaller neighbours safe",
    )
    ctx.remember("hops", 1)
    yield Move(ctx.node ^ 1)
    yield UpdateWhiteboard(increment("count"))
    yield Terminate()
