"""RPR130 fixture: writes agent memory without the bit accounting."""

from repro.protocols.base import ProtocolModel
from repro.sim.agent import Move, Terminate

MODEL = ProtocolModel()


def hoarding_agent(ctx):
    """Stores an O(n) trail directly in ``ctx.memory`` — unaccounted."""
    ctx.memory["trail"] = list(range(1 << ctx.dimension))
    yield Move(ctx.node ^ 1)
    yield Terminate()
