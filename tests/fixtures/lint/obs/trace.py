"""RPR230 fixture: a tracing-plane module importing the executor layer."""

from repro.exec.pool import ParallelExecutor


def trace_pool(executor: ParallelExecutor) -> str:
    """Describe a pool (the import above is the violation, not this)."""
    return f"{executor.config.jobs} workers"
