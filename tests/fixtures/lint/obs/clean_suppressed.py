"""Fixture: a justified suppression masking a real finding (clean)."""

import repro.sim.engine  # repro-lint: disable=RPR200
