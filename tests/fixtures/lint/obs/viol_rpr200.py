"""RPR200 fixture: an observability module importing the simulation layer."""

from repro.sim.trace import Trace


def describe(trace: Trace) -> str:
    """Summarize a trace (the import above is the violation, not this)."""
    return f"{len(trace)} events"
