"""Fixture: column layout drifted but the format tag did not (RPR360).

The layout below adds a ``phase`` column over the committed
``schema_baseline.json`` while keeping the version tags unchanged —
exactly the drift the rule exists to catch.
"""

SCHEMA_VERSION = "compiled-schedule/v1"
FORMAT_VERSION = 1

COLUMN_NAMES = ["time", "agent", "src", "dst", "kind", "role", "phase"]
