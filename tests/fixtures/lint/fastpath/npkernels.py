"""RPR250 pass fixture: the one sanctioned home of a numpy import.

A file named ``npkernels.py`` inside a ``fastpath`` package is the
kernel-backend seam itself, so its numpy import must not be flagged.
"""

import numpy as np


def plane_popcount(plane):
    """Count set bits across a packed bit-plane."""
    return int(np.bitwise_count(plane).sum())
