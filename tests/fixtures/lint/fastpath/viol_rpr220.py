"""RPR220 fixture: a fast-path module importing an upper consumer layer."""

from repro.analysis.verify import verify_schedule


def double_check(compiled) -> bool:
    """Cross-check via the classic verifier (the import is the violation)."""
    return verify_schedule(compiled.to_schedule()).ok
