"""Fixture: tmp file staged outside the destination directory (RPR350)."""

import os
import tempfile


def publish_blob(path, blob):
    """``mkstemp()`` defaults to ``/tmp`` — ``os.replace`` may cross filesystems."""
    fd, tmp = tempfile.mkstemp()
    with os.fdopen(fd, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)
