"""RPR100 fixture: behaviour generators, but no ``MODEL`` declaration."""

from repro.sim.agent import Move, Terminate


def wandering_agent(ctx):
    """Walks one edge and stops — without declaring any model at all."""
    yield Move(ctx.node ^ 1)
    yield Terminate()
