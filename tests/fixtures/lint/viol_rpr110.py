"""RPR110 fixture: mutates a whiteboard snapshot outside the vocabulary."""

from repro.protocols.base import ProtocolModel
from repro.sim.agent import Move, ReadWhiteboard, Terminate

MODEL = ProtocolModel()


def scribbling_agent(ctx):
    """Writes into a ``ReadWhiteboard`` snapshot — invisible to everyone."""
    wb = yield ReadWhiteboard()
    wb["count"] = 99
    yield Move(ctx.node ^ 1)
    yield Terminate()
