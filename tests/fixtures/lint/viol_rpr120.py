"""RPR120 fixture: a behaviour that yields a non-``Action`` value."""

from repro.protocols.base import ProtocolModel
from repro.sim.agent import Move, Terminate

MODEL = ProtocolModel()


def chatty_agent(ctx):
    """Yields a plain number, which the engine would reject at runtime."""
    yield 42
    yield Move(ctx.node ^ 1)
    yield Terminate()
