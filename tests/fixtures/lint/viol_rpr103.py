"""RPR103 fixture: consults the clock without declaring ``global_clock``."""

from repro.protocols.base import ProtocolModel
from repro.sim.agent import Move, Terminate, WaitUntil

MODEL = ProtocolModel()

ROUND = 2


def punctual_agent(ctx):
    """Waits for a global round in a model with no global clock."""
    yield WaitUntil(lambda view: view.time >= ROUND, wake_at=float(ROUND))
    yield Move(ctx.node ^ 1)
    yield Terminate()
