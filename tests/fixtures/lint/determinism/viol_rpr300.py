"""Fixture: a strategy drawing from the process-global RNG (RPR300)."""

import random

from repro.core.strategy import Strategy


class JitteryStrategy(Strategy):
    """Shuffles with the global RNG: two workers publish different blobs."""

    def generate(self, graph, homebase=0):
        order = list(range(graph.n))
        random.shuffle(order)
        return order
