"""Fixture: set-iteration order decides schedule content (RPR330)."""

from repro.core.strategy import Strategy


class UnorderedStrategy(Strategy):
    """Emits nodes in set-iteration (hash) order."""

    def generate(self, graph, homebase=0):
        pending = {homebase ^ bit for bit in (1, 2, 4)}
        return [node for node in pending]
