"""Fixture: environment-dependent schedule content (RPR320)."""

import os

from repro.core.strategy import Strategy


class TunedStrategy(Strategy):
    """Reads a tuning knob from the environment mid-generation."""

    def generate(self, graph, homebase=0):
        fan_out = int(os.environ.get("REPRO_FAN_OUT", "2"))
        return list(range(fan_out))
