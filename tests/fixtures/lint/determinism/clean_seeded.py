"""Fixture: a deterministic strategy — seeded RNG, sorted iteration."""

import random

from repro.core.strategy import Strategy


class SeededStrategy(Strategy):
    """Every choice is a pure function of the seed parameter."""

    def generate(self, graph, homebase=0, seed=0):
        rng = random.Random(seed)
        pending = {homebase ^ bit for bit in (1, 2, 4)}
        order = sorted(pending)
        rng.shuffle(order)
        return order
