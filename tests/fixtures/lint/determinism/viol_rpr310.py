"""Fixture: a wall-clock read inside schedule generation (RPR310)."""

import time

from repro.core.strategy import Strategy


class StampedStrategy(Strategy):
    """Stamps the schedule with the moment it was generated."""

    def generate(self, graph, homebase=0):
        stamp = time.time()
        return [homebase, stamp]
