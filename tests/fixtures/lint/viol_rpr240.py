"""Fixture: a constructor knob missing from ``cache_params`` (RPR240)."""

from repro.core.strategy import Strategy


class WidthTunedStrategy(Strategy):
    """``fanout`` changes the schedule but not the cache fingerprint."""

    def __init__(self, fanout=2, label="tuned"):
        self._fanout = fanout
        self.label = label

    def generate(self, graph, homebase=0):
        return [homebase ^ bit for bit in self._spread(graph.dimension)]

    def _spread(self, dimension):
        return [1 << (level % dimension) for level in range(self._fanout)]

    def cache_params(self):
        return {"label": self.label}
