"""Tests for the Section 5 variants (schedule plane): cloning, synchronous."""

import pytest

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.cloning import CloningStrategy
from repro.core.synchronous import SynchronousStrategy
from repro.core.visibility import VisibilityStrategy
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

DIMS = list(range(0, 10))


@pytest.fixture(scope="module")
def cloning():
    return {d: CloningStrategy().run(d) for d in DIMS}


@pytest.fixture(scope="module")
def synchronous():
    return {d: SynchronousStrategy().run(d) for d in DIMS}


class TestCloningCorrectness:
    @pytest.mark.parametrize("d", DIMS)
    def test_invariants(self, cloning, d):
        report = verify_schedule(cloning[d])
        assert report.ok, report.summary()

    def test_strict_contiguity(self, cloning):
        assert verify_schedule(cloning[6], check_contiguity_every_move=True).ok

    @pytest.mark.parametrize("d", DIMS)
    def test_uses_cloning_flag(self, cloning, d):
        assert cloning[d].uses_cloning


class TestCloningClaims:
    """Section 5: n/2 agents, n-1 moves, log n steps."""

    @pytest.mark.parametrize("d", DIMS)
    def test_moves_n_minus_one(self, cloning, d):
        assert cloning[d].total_moves == (1 << d) - 1

    @pytest.mark.parametrize("d", DIMS)
    def test_agents_half_n(self, cloning, d):
        assert cloning[d].team_size == formulas.cloning_agents(d)

    @pytest.mark.parametrize("d", DIMS)
    def test_steps_log_n(self, cloning, d):
        assert cloning[d].makespan == d

    @pytest.mark.parametrize("d", range(1, 9))
    def test_each_edge_crossed_exactly_once(self, cloning, d):
        tree = BroadcastTree(d)
        crossed = {(m.src, m.dst) for m in cloning[d].moves}
        assert crossed == set(tree.edges())
        assert len(cloning[d].moves) == len(crossed)  # no duplicates

    @pytest.mark.parametrize("d", range(1, 9))
    def test_agents_end_on_leaves(self, cloning, d):
        tree = BroadcastTree(d)
        finals = sorted(cloning[d].final_positions().values())
        # the original (id 0) moved; clones that never moved... every agent
        # moves at least once except in d=0; final positions = leaves
        assert finals == sorted(tree.leaves())

    @pytest.mark.parametrize("d", range(1, 9))
    def test_original_agent_takes_leftmost_path(self, cloning, d):
        """Agent 0 follows the first-child chain: 0 -> 1 -> 3 -> 7 -> ..."""
        moves = cloning[d].moves_of_agent(0)
        expected = [(1 << i) - 1 for i in range(1, d + 1)]
        assert [m.dst for m in moves] == expected

    @pytest.mark.parametrize("d", range(2, 9))
    def test_no_more_moves_than_visibility(self, cloning, d):
        """n - 1 <= (n/4)(log n + 1), strictly for d >= 3."""
        assert cloning[d].total_moves <= formulas.visibility_moves_exact(d)
        if d >= 3:
            assert cloning[d].total_moves < formulas.visibility_moves_exact(d)


class TestSynchronousVariant:
    """Section 5: identical waves to the visibility strategy, no visibility."""

    @pytest.mark.parametrize("d", DIMS)
    def test_invariants(self, synchronous, d):
        assert verify_schedule(synchronous[d]).ok

    @pytest.mark.parametrize("d", DIMS)
    def test_same_measures_as_visibility(self, synchronous, d):
        vis = VisibilityStrategy().run(d)
        syn = synchronous[d]
        assert syn.team_size == vis.team_size
        assert syn.total_moves == vis.total_moves
        assert syn.makespan == vis.makespan

    @pytest.mark.parametrize("d", range(1, 8))
    def test_identical_move_multiset(self, synchronous, d):
        from collections import Counter

        vis = VisibilityStrategy().run(d)
        a = Counter((m.src, m.dst, m.time) for m in vis.moves)
        b = Counter((m.src, m.dst, m.time) for m in synchronous[d].moves)
        assert a == b

    def test_registered_separately(self, synchronous):
        assert synchronous[3].strategy == "synchronous"
        assert SynchronousStrategy.model == "synchronous"

    @pytest.mark.parametrize("d", range(1, 8))
    def test_wave_at_msb_time(self, synchronous, d):
        """Agents on x move at t = m(x), as the Section 5 rule states."""
        h = Hypercube(d)
        for m in synchronous[d].moves:
            assert m.time - 1 == h.msb(m.src)
