"""Integration tests running every example script end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
SRC = Path(__file__).parent.parent / "src"


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    # prepend the checkout's src/ so the examples run from a bare tree the
    # same way they do from an installed package (mirrors the root conftest)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "3")
        assert proc.returncode == 0, proc.stderr
        assert "=== clean ===" in proc.stdout
        assert "capture the intruder" in proc.stdout

    def test_virus_hunt(self):
        proc = run_example("virus_hunt.py", "3", "2")
        assert proc.returncode == 0, proc.stderr
        assert "Captured: True" in proc.stdout
        assert "Intruder trajectory" in proc.stdout

    def test_strategy_comparison(self):
        proc = run_example("strategy_comparison.py", "6")
        assert proc.returncode == 0, proc.stderr
        assert "Empirical growth fits" in proc.stdout
        assert "level-sweep" in proc.stdout

    def test_figures(self):
        proc = run_example("figures_from_paper.py")
        assert proc.returncode == 0, proc.stderr
        for marker in ("Figure 1", "Figure 2", "Figure 3", "Figure 4"):
            assert marker in proc.stdout

    def test_optimality_study(self):
        proc = run_example("optimality_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "brute-force check" in proc.stdout

    @pytest.mark.parametrize("strategy", ["visibility", "clean", "cloning"])
    def test_watch_the_sweep(self, strategy):
        proc = run_example("watch_the_sweep.py", strategy, "3")
        assert proc.returncode == 0, proc.stderr
        assert "0 contaminated left" in proc.stdout
        assert "done:" in proc.stdout

    def test_overhead_study(self):
        proc = run_example("overhead_study.py", "3")
        assert proc.returncode == 0, proc.stderr
        assert "hottest node" in proc.stdout
        assert "amortized overhead" in proc.stdout

    def test_arbitrary_network(self):
        proc = run_example("arbitrary_network.py")
        assert proc.returncode == 0, proc.stderr
        assert "enterprise" in proc.stdout
        assert "every intruder was cornered" in proc.stdout

    def test_incident_response(self):
        proc = run_example("incident_response.py", "5")
        assert proc.returncode == 0, proc.stderr
        assert "Quarantine line" in proc.stdout
        assert "overhead argument, quantified" in proc.stdout

    def test_custom_strategy(self):
        proc = run_example("custom_strategy.py", "3")
        assert proc.returncode == 0, proc.stderr
        assert "gray-snake" in proc.stdout  # the broken one, caught
        assert "harper" in proc.stdout
        assert "validated by the library's own machinery" in proc.stdout
