"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in public_members(module):
        if not inspect.getdoc(obj):
            missing.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not inspect.getdoc(
                    getattr(obj, meth_name)
                ):
                    # getdoc follows the MRO: an override inheriting the
                    # base class's documentation counts as documented
                    missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module_name}: undocumented public items: {missing}"


def test_package_lists_modules():
    """Sanity: the walk actually found the package (guards against an
    empty parametrization silently passing)."""
    assert len(MODULES) > 25
    assert "repro.core.clean" in MODULES
    assert "repro.analysis.lower_bounds" in MODULES
