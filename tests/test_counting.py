"""Tests for the binomial identities the proofs rely on (Section 3.2.1)."""

from math import comb

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.counting import (
    binomial,
    central_binomial,
    leaves_at_level,
    level_sizes,
    nodes_of_type_census,
    sum_of_level_sizes,
    total_leaves,
    type_count_at_level,
    vandermonde_sum,
    weighted_leaf_sum,
)
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube


class TestBinomial:
    def test_zero_convention(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-1, 0) == 0

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
    def test_matches_math_comb(self, n, k):
        expected = comb(n, k) if k <= n else 0
        assert binomial(n, k) == expected


class TestLevelIdentities:
    @pytest.mark.parametrize("d", range(0, 12))
    def test_levels_sum_to_n(self, d):
        """sum_l C(d,l) = 2^d (used in Theorem 3)."""
        assert sum_of_level_sizes(d) == 2**d

    @pytest.mark.parametrize("d", range(1, 10))
    def test_level_sizes_match_hypercube(self, d):
        h = Hypercube(d)
        assert level_sizes(d) == [len(h.level_nodes(l)) for l in range(d + 1)]


class TestLeafIdentities:
    @pytest.mark.parametrize("d", range(0, 12))
    def test_total_leaves_is_half(self, d):
        """sum_l C(d-1, l-1) = 2^{d-1} (Theorem 3's first identity)."""
        assert total_leaves(d) == max(1, 2 ** (d - 1))

    @pytest.mark.parametrize("d", range(1, 9))
    def test_leaves_match_tree(self, d):
        tree = BroadcastTree(d)
        for level in range(d + 1):
            assert leaves_at_level(d, level) == tree.leaf_count_at_level(level)

    @pytest.mark.parametrize("d", range(2, 14))
    def test_weighted_leaf_sum_closed_form(self, d):
        """sum_l l C(d-1,l-1) = (d+1) 2^{d-2} (Theorem 3 and Theorem 8)."""
        assert weighted_leaf_sum(d) == (d + 1) * 2 ** (d - 2)

    def test_weighted_leaf_sum_degenerate(self):
        assert weighted_leaf_sum(0) == 0
        assert weighted_leaf_sum(1) == 1


class TestTypeCensus:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_matches_broadcast_tree(self, d):
        tree = BroadcastTree(d)
        for level in range(d + 1):
            assert nodes_of_type_census(d, level) == tree.type_census(level)

    def test_type_count_level_zero(self):
        assert type_count_at_level(5, 5, 0) == 1
        assert type_count_at_level(5, 3, 0) == 0

    @pytest.mark.parametrize("d", range(1, 10))
    def test_types_sum_to_level_size(self, d):
        for level in range(1, d + 1):
            total = sum(nodes_of_type_census(d, level).values())
            assert total == comb(d, level)


class TestVandermonde:
    """Lemma 3's identity (4): sum_i C(i,1) C(d-2-i, L) = C(d-1, L+2)."""

    @pytest.mark.parametrize("d", range(2, 14))
    def test_identity(self, d):
        for L in range(0, d - 1):
            assert vandermonde_sum(d, L) == binomial(d - 1, L + 2)


class TestCentralBinomial:
    @pytest.mark.parametrize("d", range(0, 14))
    def test_value(self, d):
        assert central_binomial(d) == comb(d, (d + 1) // 2)

    def test_even_odd_agree_with_max(self):
        for d in range(1, 14):
            assert central_binomial(d) == max(comb(d, k) for k in range(d + 1))
