"""Tests for localized quarantine-and-clean operations."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError, TopologyError
from repro.sim.quarantine import quarantine_and_clean, quarantine_line
from repro.topology.generic import grid_graph, hypercube_graph, path_graph, ring_graph
from repro.topology.hypercube import Hypercube

from .conftest import connected_graphs


class TestQuarantineLine:
    def test_line_of_a_subcube(self):
        g = hypercube_graph(3)
        infected = {6, 7}  # an edge of the cube
        line = quarantine_line(g, infected)
        assert line == {2, 3, 4, 5}

    def test_line_of_everything_is_empty(self):
        g = path_graph(3)
        assert quarantine_line(g, {0, 1, 2}) == set()


class TestOperations:
    def test_single_infected_host(self):
        g = hypercube_graph(4)
        report = quarantine_and_clean(g, {9})
        assert report.ok
        assert report.moves <= 4  # in and out (plus pathing slack)
        assert report.sweep_team <= 2

    def test_infected_subcube(self):
        g = hypercube_graph(4)
        infected = {x for x in range(16) if x & 0b1100 == 0b1100}  # a 2-subcube
        report = quarantine_and_clean(g, infected)
        assert report.ok
        assert set(report.contaminated) == infected

    def test_locality_payoff(self):
        """Cleaning a small incident is far cheaper than a full sweep."""
        from repro.core.strategy import get_strategy

        d = 6
        g = hypercube_graph(d)
        incident = {7, 15, 31}  # a three-host chain up one corner
        report = quarantine_and_clean(g, incident)
        assert report.ok
        full = get_strategy("clean").run(d).total_moves
        assert report.moves < full / 10

    def test_homebase_choice(self):
        g = ring_graph(8)
        infected = {3, 4}
        line = quarantine_line(g, infected)
        for homebase in line:
            report = quarantine_and_clean(g, infected, homebase=homebase)
            assert report.ok

    def test_bad_homebase_rejected(self):
        g = ring_graph(8)
        with pytest.raises(SimulationError):
            quarantine_and_clean(g, {3, 4}, homebase=0)

    def test_empty_infection_rejected(self):
        with pytest.raises(SimulationError):
            quarantine_and_clean(ring_graph(5), set())

    def test_total_infection_rejected(self):
        g = path_graph(4)
        with pytest.raises(SimulationError):
            quarantine_and_clean(g, {0, 1, 2, 3})

    def test_disconnected_infection_rejected(self):
        g = path_graph(7)
        with pytest.raises(TopologyError):
            quarantine_and_clean(g, {0, 6})  # two far-apart components

    def test_grid_incident(self):
        g = grid_graph(4, 4)
        infected = {5, 6, 9, 10}  # the centre block
        report = quarantine_and_clean(g, infected)
        assert report.ok
        assert report.total_agents == len(report.quarantine_guards) + report.sweep_team

    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(st.data())
    def test_random_incidents(self, data):
        """Fuzz: a random connected infected patch of a random graph is
        always contained and cleaned."""
        g = data.draw(connected_graphs(min_nodes=4, max_nodes=12))
        start = data.draw(st.integers(min_value=0, max_value=g.n - 1))
        size = data.draw(st.integers(min_value=1, max_value=max(1, g.n - 2)))
        # grow a connected patch from `start`
        patch = {start}
        frontier = [start]
        while frontier and len(patch) < size:
            node = frontier.pop(0)
            for y in g.neighbors(node):
                if y not in patch and len(patch) < size:
                    patch.add(y)
                    frontier.append(y)
        if patch >= set(g.nodes()):
            return  # no quarantine line possible
        report = quarantine_and_clean(g, patch)
        assert report.ok

    def test_hypercube_object_works_too(self):
        report = quarantine_and_clean(Hypercube(3), {6, 7})
        assert report.ok
