"""Tests for the schedule time profiles."""

import pytest

from repro.analysis import formulas
from repro.analysis.profiles import (
    deployed_agents_profile,
    guards_per_level_profile,
    peak_deployed,
)
from repro.core.strategy import get_strategy


class TestDeployedProfile:
    def test_starts_at_zero(self):
        schedule = get_strategy("visibility").run(4)
        assert deployed_agents_profile(schedule)[0] == 0

    def test_visibility_pyramid(self):
        """One wave empties the homebase; afterwards everyone stays out."""
        d = 5
        schedule = get_strategy("visibility").run(d)
        profile = deployed_agents_profile(schedule)
        # after wave 1 all n/2 agents have left home, and none return
        for t in range(1, d + 1):
            assert profile[t] == formulas.visibility_agents(d)

    def test_clean_sawtooth_peaks_at_lemma_4(self):
        """CLEAN's peak simultaneous deployment equals the Lemma 4 maximum
        over passes (the synchronizer counted, minus the homebase pool)."""
        d = 6
        schedule = get_strategy("clean").run(d)
        peak = peak_deployed(schedule)
        lemma_4_peak = max(
            formulas.clean_active_agents_during_pass(d, l) for l in range(1, d)
        )
        # peak deployment can't exceed the team and tracks the lemma value
        assert peak <= schedule.team_size
        assert lemma_4_peak - 2 <= peak <= lemma_4_peak

    def test_clean_profile_returns_to_low(self):
        """Leaves retire to the root: the deployment count comes back down
        near the end (only the final guard and synchronizer remain out)."""
        schedule = get_strategy("clean").run(5)
        profile = deployed_agents_profile(schedule)
        assert profile[max(profile)] <= 2

    def test_cloning_profile_counts_creations(self):
        d = 4
        schedule = get_strategy("cloning").run(d)
        profile = deployed_agents_profile(schedule)
        assert profile[d] == formulas.cloning_agents(d)


class TestLevelProfile:
    def test_clean_levels_fill_in_order(self):
        """The first time any level-l node is guarded comes after the first
        time level l-1 was (the level-by-level narrative)."""
        schedule = get_strategy("clean").run(5)
        snapshots = guards_per_level_profile(schedule)
        first_seen = {}
        for t, census in enumerate(snapshots, start=1):
            for level in census:
                first_seen.setdefault(level, t)
        levels = sorted(first_seen)
        times = [first_seen[l] for l in levels]
        assert times == sorted(times)

    def test_visibility_final_snapshot_is_leaf_census(self):
        """At the end every agent guards a distinct broadcast-tree leaf:
        the level census equals the Property 2 leaf counts."""
        from repro.analysis.counting import leaves_at_level

        d = 5
        schedule = get_strategy("visibility").run(d)
        final = guards_per_level_profile(schedule)[-1]
        for level, count in final.items():
            assert count == leaves_at_level(d, level)

    @pytest.mark.parametrize("name", ["clean", "visibility", "cloning"])
    def test_census_totals_match_deployment(self, name):
        schedule = get_strategy(name).run(4)
        deploys = deployed_agents_profile(schedule)
        censuses = guards_per_level_profile(schedule)
        times = sorted(t for t in deploys if t > 0)
        for t, census in zip(times, censuses):
            assert sum(census.values()) == deploys[t]
