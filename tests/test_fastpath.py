"""Tests for the fast-path plane: compiled schedules, cache, batch verify.

Three contracts, each exercised end to end:

* **losslessness** — ``compile -> bytes -> compile -> decompile`` is the
  identity on every generator's output, metadata included;
* **verdict equivalence** — :func:`repro.fastpath.batch_verify` agrees
  with the classic :class:`~repro.analysis.verify.ScheduleVerifier` on
  clean schedules *and* on seeded violations (one move per time unit,
  where the per-move and per-unit replays are the same computation);
* **cache robustness** — a shared directory serves warm entries, counts
  hits/misses, and treats truncated or bit-flipped entries as misses to
  regenerate, never as crashes.
"""

import pytest

from repro.analysis.sweeps import measure_cell, run_sweep
from repro.analysis.verify import verify_schedule
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.core.strategy import (
    available_strategies,
    get_strategy,
    set_active_cache,
)
from repro.errors import CompiledScheduleError, ScheduleCacheError, ScheduleError
from repro.fastpath import (
    CompiledSchedule,
    ScheduleCache,
    batch_verify,
    decode_metadata,
    encode_metadata,
    fingerprint,
    measure_schedule,
)

ALL_STRATEGIES = sorted(available_strategies())


def mk(agent, src, dst, time):
    return Move(
        agent=agent, src=src, dst=dst, time=time,
        role=AgentRole.AGENT, kind=MoveKind.DEPLOY,
    )


def seeded(moves, team, d=2, **kwargs):
    return Schedule(dimension=d, strategy="seeded", moves=moves, team_size=team, **kwargs)


# --------------------------------------------------------------------- #
# compile / decompile / bytes
# --------------------------------------------------------------------- #


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("d", range(1, 9))
    def test_exact_round_trip(self, name, d):
        schedule = get_strategy(name).run(d)
        compiled = CompiledSchedule.from_bytes(
            CompiledSchedule.from_schedule(schedule).to_bytes()
        )
        back = compiled.to_schedule()
        assert back == schedule  # moves, metadata, flags — everything
        assert back.metadata == schedule.metadata
        assert [type(m.kind) for m in back.moves] == [type(m.kind) for m in schedule.moves]

    def test_stats_block_matches_scan(self):
        schedule = get_strategy("clean").run(5)
        compiled = CompiledSchedule.from_schedule(schedule)
        assert compiled.aggregates() == schedule.aggregates()
        assert compiled.verify_stats()
        assert compiled.total_moves == schedule.total_moves
        assert compiled.makespan == schedule.makespan

    def test_decompiled_schedule_measures_without_rescan(self):
        compiled = CompiledSchedule.from_schedule(get_strategy("visibility").run(4))
        back = compiled.to_schedule()
        # the stats block is handed over, not recomputed
        assert back._agg is compiled.stats
        assert measure_schedule(back) == measure_schedule(compiled)

    def test_metadata_round_trips_int_keys_and_tuples(self):
        payload = {"extras_per_level": {1: 2, 3: 4}, "pair": (1, "a"), "xs": [1, 2]}
        assert decode_metadata(encode_metadata(payload)) == payload

    def test_blob_rejects_garbage(self):
        compiled = CompiledSchedule.from_schedule(get_strategy("clean").run(3))
        blob = compiled.to_bytes()
        with pytest.raises(CompiledScheduleError):
            CompiledSchedule.from_bytes(b"")
        with pytest.raises(CompiledScheduleError):
            CompiledSchedule.from_bytes(b"NOPE" + blob[4:])
        with pytest.raises(CompiledScheduleError):
            CompiledSchedule.from_bytes(blob[: len(blob) // 2])  # truncated
        flipped = bytearray(blob)
        flipped[len(blob) // 2] ^= 0xFF
        with pytest.raises(CompiledScheduleError):
            CompiledSchedule.from_bytes(bytes(flipped))  # CRC catches the flip


# --------------------------------------------------------------------- #
# batch verifier vs the classic one
# --------------------------------------------------------------------- #

VERDICT_FIELDS = (
    "monotone", "contiguous", "complete", "intruder_captured",
    "ok", "total_moves", "makespan", "team_size",
)


def assert_same_verdict(schedule):
    classic = verify_schedule(schedule)
    batch = batch_verify(CompiledSchedule.from_schedule(schedule))
    for f in VERDICT_FIELDS:
        assert getattr(classic, f) == getattr(batch, f), f
    return classic, batch


class TestBatchVerifyEquivalence:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("d", range(1, 10))
    def test_generator_output_agrees(self, name, d):
        classic, batch = assert_same_verdict(get_strategy(name).run(d))
        assert classic.ok and batch.ok

    def test_recontamination_agrees(self):
        # H_2 sweep-and-return: vacating 1 next to contaminated 3
        _, batch = assert_same_verdict(seeded([mk(0, 0, 1, 1), mk(0, 1, 0, 2)], team=1))
        assert not batch.monotone
        assert any("recontaminated" in v for v in batch.violations)

    def test_incomplete_cleaning_agrees(self):
        _, batch = assert_same_verdict(seeded([mk(0, 0, 1, 1)], team=2))
        assert batch.monotone and not batch.complete and not batch.intruder_captured
        with pytest.raises(Exception):
            batch.raise_if_failed()

    def test_contiguity_break_agrees(self):
        # the reckless H_3 dash 0 -> 1 -> 3 -> 7 abandons the corridor
        moves = [mk(0, 0, 1, 1), mk(0, 1, 3, 2), mk(0, 3, 7, 3)]
        _, batch = assert_same_verdict(seeded(moves, team=2, d=3))
        assert not batch.monotone and not batch.contiguous

    def test_clean_seeded_schedule_agrees(self):
        classic, batch = assert_same_verdict(seeded([mk(0, 0, 1, 1)], team=1, d=1))
        assert classic.ok and batch.ok
        batch.raise_if_failed()

    def test_structure_errors_raise_like_classic(self):
        for bad in (
            seeded([mk(0, 1, 3, 1)], team=1),   # first move away from homebase
            seeded([mk(0, 0, 3, 1)], team=1),   # not an edge
            seeded([mk(0, 0, 1, 2), mk(0, 1, 0, 1)], team=1),  # time goes backward
        ):
            with pytest.raises(ScheduleError):
                verify_schedule(bad)
            with pytest.raises(ScheduleError):
                batch_verify(CompiledSchedule.from_schedule(bad))

    def test_summary_format_matches_classic(self):
        batch = batch_verify(CompiledSchedule.from_schedule(get_strategy("clean").run(3)))
        assert batch.summary().startswith("[OK] clean(d=3):")


# --------------------------------------------------------------------- #
# the cache
# --------------------------------------------------------------------- #


class TestScheduleCache:
    def test_miss_store_hit_cycle(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("visibility")
        fp, compiled = cache.load_compiled(strategy, 4)
        assert compiled is None and cache.stats.misses == 1
        cache.store(fp, CompiledSchedule.from_schedule(strategy.run(4)))
        _, warm = cache.load_compiled(strategy, 4)
        assert warm is not None and cache.stats.hits == 1
        assert warm.to_schedule() == strategy.run(4)

    def test_fingerprint_sensitivity(self):
        base = fingerprint("clean", "1", 4, {})
        assert fingerprint("clean", "1", 5, {}) != base       # dimension
        assert fingerprint("clean", "2", 4, {}) != base       # generator version
        assert fingerprint("visibility", "1", 4, {}) != base  # strategy
        assert fingerprint("clean", "1", 4, {"k": 1}) != base # params
        assert fingerprint("clean", "1", 4, {}) == base       # deterministic

    def test_truncated_entry_regenerates(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("clean")
        fp = cache.fingerprint_of(strategy, 3)
        cache.store(fp, CompiledSchedule.from_schedule(strategy.run(3)))
        path = cache.path_for(fp)
        path.write_bytes(path.read_bytes()[:10])  # torn write
        assert cache.load(fp) is None
        assert cache.stats.corrupt == 1 and cache.stats.misses == 1
        assert not path.exists()  # bad entry deleted
        # the schedule_for path regenerates transparently
        assert cache.schedule_for(strategy, 3) == strategy.run(3)
        assert cache.load(fp) is not None

    def test_bit_flipped_entry_regenerates(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("cloning")
        fp = cache.fingerprint_of(strategy, 4)
        cache.store(fp, CompiledSchedule.from_schedule(strategy.run(4)))
        path = cache.path_for(fp)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        assert cache.load(fp) is None
        assert cache.stats.corrupt == 1
        assert cache.schedule_for(strategy, 4) == strategy.run(4)

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        strategy = get_strategy("visibility")
        cache.schedule_for(strategy, 3)
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(cache.entries())) == 1

    def test_info_and_clear(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        cache.schedule_for(get_strategy("clean"), 2)
        info = cache.info()
        assert info["entries"] == 1 and info["total_bytes"] > 0
        assert cache.clear() == 1
        assert cache.info()["entries"] == 0

    def test_malformed_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ScheduleCacheError):
            ScheduleCache(tmp_path).path_for("../../etc/passwd")

    def test_metrics_binding(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cache = ScheduleCache(tmp_path)
        cache.bind_metrics(registry)
        cache.schedule_for(get_strategy("clean"), 2)  # miss + store
        cache.schedule_for(get_strategy("clean"), 2)  # hit
        counters = registry.snapshot()["counters"]
        assert counters["fastpath.cache.misses"] == 1
        assert counters["fastpath.cache.hits"] == 1
        assert counters["fastpath.cache.stores"] == 1

    def test_incomplete_cache_params_serves_stale_schedule(self, tmp_path):
        """The hazard RPR240 guards: a knob omitted from cache_params
        collapses two configurations onto one fingerprint, and the
        second instance is served the first one's schedule."""
        from repro.core.strategy import Strategy

        class Tunable(Strategy):
            name = "tunable-probe"

            def __init__(self, steps=1):
                self.steps = steps

            def generate(self, hypercube):
                moves = [mk(0, 0, 1, t) for t in range(1, self.steps + 1)]
                return seeded(moves, 1, d=hypercube.dimension)

        cache = ScheduleCache(tmp_path)
        short, long = Tunable(steps=1), Tunable(steps=3)
        assert cache.fingerprint_of(short, 2) == cache.fingerprint_of(long, 2)
        assert len(cache.schedule_for(short, 2).moves) == 1
        # stale: `long` wants 3 moves but warm-hits `short`'s entry
        assert len(cache.schedule_for(long, 2).moves) == 1

        class Keyed(Tunable):
            name = "keyed-probe"

            def cache_params(self):
                return {"steps": self.steps}

        short, long = Keyed(steps=1), Keyed(steps=3)
        assert cache.fingerprint_of(short, 2) != cache.fingerprint_of(long, 2)
        assert len(cache.schedule_for(short, 2).moves) == 1
        assert len(cache.schedule_for(long, 2).moves) == 3

    def test_active_cache_serves_strategy_run(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        previous = set_active_cache(cache)
        try:
            first = get_strategy("visibility").run(3)
            second = get_strategy("visibility").run(3)
        finally:
            set_active_cache(previous)
        assert first == second
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        # with the hook uninstalled, generation is direct again
        get_strategy("visibility").run(3)
        assert cache.stats.hits == 1


# --------------------------------------------------------------------- #
# measure_cell and the sweep wiring
# --------------------------------------------------------------------- #


class TestMeasureCell:
    def test_cacheless_matches_cached_values(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        for name in ("clean", "visibility", "cloning"):
            plain, _, prov = measure_cell(name, 4)
            cold, _, cold_prov = measure_cell(name, 4, cache=cache)
            warm, _, warm_prov = measure_cell(name, 4, cache=cache)
            assert plain == cold == warm
            assert prov == {}
            assert cold_prov["source"] == "generated"
            assert warm_prov["source"] == "cache"
            assert warm_prov["fingerprint"] == cold_prov["fingerprint"]

    def test_sweep_rows_identical_with_and_without_cache(self, tmp_path):
        strategies, dims = ["clean", "visibility"], [2, 3, 4]
        _, plain = run_sweep(strategies, dims)
        cache = ScheduleCache(tmp_path)
        _, cold = run_sweep(strategies, dims, cache=cache)
        _, warm = run_sweep(strategies, dims, cache=cache)
        assert [r.as_flat_dict() for r in cold] == [r.as_flat_dict() for r in plain]
        assert [r.as_flat_dict() for r in warm] == [r.as_flat_dict() for r in plain]
        assert cache.stats.misses == len(plain) and cache.stats.hits == len(plain)

    def test_extra_metrics_decompile_on_cached_path(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        extra = {"last_time": lambda s: float(s.moves[-1].time)}
        _, rows = run_sweep(["clean"], [3], extra_metrics=extra, cache=cache)
        _, plain_rows = run_sweep(["clean"], [3], extra_metrics=extra)
        assert rows[0].values == plain_rows[0].values

    def test_measure_schedule_shared_by_both_forms(self):
        schedule = get_strategy("clean").run(4)
        compiled = CompiledSchedule.from_schedule(schedule)
        values = measure_schedule(schedule)
        assert values == measure_schedule(compiled)
        assert values["agents"] == schedule.team_size
        assert values["moves"] == schedule.total_moves
        assert values["steps"] == schedule.makespan
        assert values["agent_moves"] + values["sync_moves"] == values["moves"]


# --------------------------------------------------------------------- #
# the CLI surface
# --------------------------------------------------------------------- #


class TestCacheCli:
    def test_sweep_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "-d", "2", "3", "-s", "clean", "--cache", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hit(s), 2 miss(es)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es)" in warm
        # tables identical modulo the stats line
        def strip(text):
            return [l for l in text.splitlines() if "schedule cache" not in l]

        assert strip(cold) == strip(warm)

    def test_cache_info_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        main(["sweep", "-d", "2", "-s", "clean", "--cache", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        assert "entries     : 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        assert "entries     : 0" in capsys.readouterr().out

    def test_no_cache_beats_environment(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.fastpath import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert main(["sweep", "-d", "2", "-s", "clean", "--no-cache"]) == 0
        assert "schedule cache" not in capsys.readouterr().out
        assert list(tmp_path.glob("*.rprc")) == []
        # without --no-cache the environment switches the cache on
        assert main(["sweep", "-d", "2", "-s", "clean"]) == 0
        assert "schedule cache" in capsys.readouterr().out
        assert len(list(tmp_path.glob("*.rprc"))) == 1

    def test_parallel_sweep_shares_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        argv = [
            "sweep", "-d", "2", "3", "-s", "clean", "visibility",
            "--cache", str(cache_dir), "--jobs", "2",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert len(list(cache_dir.glob("*.rprc"))) == 4
        # serial warm run over the directory the workers populated
        assert main(argv[:-2]) == 0
        assert "4 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_experiment_uses_cache(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["experiment", "E1", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "schedule cache" in out
        assert len(list(tmp_path.glob("*.rprc"))) > 0


# --------------------------------------------------------------------- #
# schedule aggregate memoization (the satellite)
# --------------------------------------------------------------------- #


class TestScheduleMemoization:
    def test_aggregates_cached_until_moves_change(self):
        schedule = get_strategy("clean").run(4)
        first = schedule.aggregates()
        assert schedule.aggregates() is first  # memo hit
        schedule.moves.append(
            mk(99, schedule.moves[-1].dst, schedule.moves[-1].dst ^ 1,
               schedule.moves[-1].time + 1)
        )
        second = schedule.aggregates()
        assert second is not first
        assert second.total_moves == first.total_moves + 1

    def test_invalidate_caches_forces_rescan(self):
        schedule = get_strategy("visibility").run(3)
        first = schedule.aggregates()
        schedule.invalidate_caches()
        assert schedule.aggregates() is not first
        assert schedule.aggregates() == first

    def test_peak_traveling_agents_streaming_matches_property(self):
        for name in ALL_STRATEGIES:
            schedule = get_strategy(name).run(5)
            agg = schedule.aggregates()
            assert agg.peak_traveling_agents == max(
                (len(unit) for _, unit in schedule.by_time()), default=0
            )
