"""Tests for Algorithm 2 CLEAN WITH VISIBILITY (schedule plane): Thms 5-8."""

import pytest

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.visibility import VisibilityStrategy
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

DIMS = list(range(0, 10))


@pytest.fixture(scope="module")
def schedules():
    strategy = VisibilityStrategy()
    return {d: strategy.run(d) for d in DIMS}


class TestCorrectness:
    """Theorem 6: all nodes cleaned, no recontamination."""

    @pytest.mark.parametrize("d", DIMS)
    def test_invariants(self, schedules, d):
        report = verify_schedule(schedules[d])
        assert report.ok, report.summary()

    def test_strict_per_move_contiguity(self, schedules):
        assert verify_schedule(schedules[6], check_contiguity_every_move=True).ok


class TestTheorem5Agents:
    @pytest.mark.parametrize("d", DIMS)
    def test_team_is_half_n(self, schedules, d):
        assert schedules[d].team_size == formulas.visibility_agents(d)

    @pytest.mark.parametrize("d", range(1, 9))
    def test_every_agent_ends_on_a_distinct_leaf(self, schedules, d):
        tree = BroadcastTree(d)
        positions = schedules[d].final_positions()
        finals = sorted(positions.values())
        assert finals == sorted(tree.leaves())

    @pytest.mark.parametrize("d", range(1, 9))
    def test_squad_sizes_respect_type_rule(self, schedules, d):
        """A type-T(k) node forwards exactly agents_for_type(i) agents to
        its type-T(i) child."""
        tree = BroadcastTree(d)
        crossings = {}
        for m in schedules[d].moves:
            crossings[(m.src, m.dst)] = crossings.get((m.src, m.dst), 0) + 1
        for parent, child in tree.edges():
            k = tree.node_type(child)
            assert crossings[(parent, child)] == formulas.agents_for_type(k)


class TestTheorem7Time:
    @pytest.mark.parametrize("d", DIMS)
    def test_makespan_is_log_n(self, schedules, d):
        assert schedules[d].makespan == d

    @pytest.mark.parametrize("d", range(1, 9))
    def test_class_ci_moves_at_wave_i(self, schedules, d):
        """All departures from a node in C_i complete at time i+1."""
        h = Hypercube(d)
        for m in schedules[d].moves:
            assert m.time == h.class_index(m.src) + 1

    @pytest.mark.parametrize("d", range(1, 9))
    def test_wave_sizes_metadata(self, schedules, d):
        """Wave i moves the agents sitting on all of C_i."""
        h = Hypercube(d)
        tree = BroadcastTree(d)
        waves = schedules[d].metadata["wave_sizes"]
        for i in range(d):
            expected = sum(
                formulas.agents_for_type(tree.node_type(x)) for x in h.class_members(i)
            )
            assert waves[i] == expected

    def test_nodes_become_clean_at_their_class_index(self, schedules):
        """Theorem 7's induction: node x in C_i is cleaned during wave i
        (completion time i + 1); leaves stay guarded."""
        d = 6
        h = Hypercube(d)
        report = verify_schedule(schedules[d])
        tree = BroadcastTree(d)
        for x in range(h.n):
            if tree.is_leaf(x):
                assert x not in report.clean_times  # guarded forever
            else:
                assert report.clean_times[x] == h.class_index(x) + 1


class TestTheorem8Moves:
    @pytest.mark.parametrize("d", DIMS)
    def test_total_moves_exact(self, schedules, d):
        assert schedules[d].total_moves == formulas.visibility_moves_exact(d)

    @pytest.mark.parametrize("d", range(2, 9))
    def test_closed_form(self, schedules, d):
        assert schedules[d].total_moves == (d + 1) * 2 ** (d - 2)

    @pytest.mark.parametrize("d", range(1, 9))
    def test_each_agent_walks_root_to_leaf(self, schedules, d):
        """Every agent's move sequence is a root-to-leaf tree path."""
        tree = BroadcastTree(d)
        h = Hypercube(d)
        for agent in range(schedules[d].team_size):
            path_moves = schedules[d].moves_of_agent(agent)
            assert path_moves, f"agent {agent} never moved"
            assert path_moves[0].src == 0
            for a, b in zip(path_moves, path_moves[1:]):
                assert a.dst == b.src
                assert tree.parent(b.dst) == b.src
            assert tree.is_leaf(path_moves[-1].dst)
            # moves happen one wave apart: time = class of src + 1
            for m in path_moves:
                assert m.time == h.class_index(m.src) + 1


class TestConcurrency:
    def test_many_agents_move_simultaneously(self, schedules):
        """Unlike CLEAN, whole waves travel at once."""
        assert schedules[6].peak_traveling_agents() > 8

    def test_no_synchronizer(self, schedules):
        assert schedules[6].synchronizer_moves() == 0
