"""Tests for trace serialization and integrity validation."""

import pytest

from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.trace import Trace, TraceEvent
from repro.topology.hypercube import Hypercube


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        result = run_visibility_protocol(3)
        back = Trace.from_json(result.trace.to_json())
        assert len(back) == len(result.trace)
        assert back.move_multiset() == result.trace.move_multiset()
        assert back.makespan() == result.trace.makespan()
        assert back.per_agent_moves() == result.trace.per_agent_moves()

    def test_empty_trace(self):
        assert len(Trace.from_json(Trace().to_json())) == 0

    def test_event_fields_survive(self):
        trace = Trace()
        trace.log(TraceEvent(1.5, "move", 3, 7, {"src": 5}))
        back = Trace.from_json(trace.to_json())
        event = back.events()[0]
        assert (event.time, event.kind, event.agent, event.node) == (1.5, "move", 3, 7)
        assert event.data == {"src": 5}


class TestValidation:
    def test_real_traces_validate(self):
        h = Hypercube(4)
        run_visibility_protocol(4).trace.validate_against(h)
        run_cloning_protocol(4).trace.validate_against(h)

    def test_clean_protocol_trace_validates(self):
        from repro.protocols.clean_protocol import run_clean_protocol

        run_clean_protocol(3).trace.validate_against(Hypercube(3))

    def test_non_edge_rejected(self):
        trace = Trace()
        trace.log(TraceEvent(1.0, "move", 0, 3, {"src": 0}))
        with pytest.raises(ValueError):
            trace.validate_against(Hypercube(2))

    def test_broken_chain_rejected(self):
        trace = Trace()
        trace.log(TraceEvent(1.0, "move", 0, 1, {"src": 0}))
        trace.log(TraceEvent(2.0, "move", 0, 3, {"src": 2}))  # teleported to 2
        with pytest.raises(ValueError):
            trace.validate_against(Hypercube(2))

    def test_clone_birthplace_honoured(self):
        trace = Trace()
        trace.log(TraceEvent(1.0, "move", 0, 1, {"src": 0}))
        trace.log(TraceEvent(1.0, "clone", 0, 1, {"child": 1}))
        trace.log(TraceEvent(2.0, "move", 1, 3, {"src": 1}))  # clone starts at 1
        trace.validate_against(Hypercube(2))

    def test_tampered_serialized_trace_caught(self):
        import json

        result = run_visibility_protocol(3)
        raw = json.loads(result.trace.to_json())
        for event in raw:
            if event["kind"] == "move":
                event["data"]["src"] = 5  # corrupt one move's source
                break
        with pytest.raises(ValueError):
            Trace.from_json(json.dumps(raw)).validate_against(Hypercube(3))

class TestRingMode:
    """Bounded traces: only the newest maxlen events are retained, but the
    running totals stay exact."""

    def test_maxlen_validation(self):
        with pytest.raises(ValueError):
            Trace(maxlen=0)
        with pytest.raises(ValueError):
            Trace(maxlen=-5)

    def test_unbounded_sizes(self):
        trace = Trace()
        trace.log(TraceEvent(0.0, "move", 0, 1, {"src": 0}))
        sizes = trace.sizes()
        assert sizes["retained"] == 1
        assert sizes["dropped"] == 0
        assert sizes["total_logged"] == 1
        assert sizes["maxlen"] is None
        assert sizes["approx_bytes"] > 0

    def test_ring_evicts_oldest(self):
        trace = Trace(maxlen=3)
        for i in range(7):
            trace.log(TraceEvent(float(i), "move", 0, i + 1, {"src": i}))
        assert len(trace) == 3
        assert [e.node for e in trace] == [5, 6, 7]
        sizes = trace.sizes()
        assert sizes["retained"] == 3
        assert sizes["dropped"] == 4
        assert sizes["total_logged"] == 7

    def test_move_count_survives_eviction(self):
        trace = Trace(maxlen=2)
        for i in range(10):
            trace.log(TraceEvent(float(i), "move", 0, i + 1, {"src": i}))
        assert trace.move_count() == 10  # eviction-proof counter
        assert len(trace.moves()) == 2  # retained window only

    def test_non_move_events_counted_separately(self):
        trace = Trace(maxlen=4)
        trace.log(TraceEvent(0.0, "wait", 0, 0, {}))
        trace.log(TraceEvent(1.0, "move", 0, 1, {"src": 0}))
        trace.log(TraceEvent(2.0, "wake", 1, 0, {}))
        assert trace.move_count() == 1
        assert trace.sizes()["total_logged"] == 3
        assert trace.sizes()["dropped"] == 0

    def test_engine_respects_trace_maxlen(self):
        result_full = run_visibility_protocol(4)
        result_ring = run_visibility_protocol(4, trace_maxlen=10)
        assert len(result_ring.trace) == 10
        # exact totals are preserved despite eviction
        assert result_ring.trace.move_count() == result_full.trace.move_count()
        assert result_ring.total_moves == result_full.total_moves

    def test_time_ordering_still_enforced_in_ring(self):
        trace = Trace(maxlen=2)
        trace.log(TraceEvent(5.0, "move", 0, 1, {"src": 0}))
        with pytest.raises(ValueError):
            trace.log(TraceEvent(1.0, "move", 0, 2, {"src": 1}))
