"""Tests for the Algorithm 2 protocol on the asynchronous engine.

These check the distributed implementation (genuine local rule, neighbour
observation, whiteboard slot claiming) against the paper's theorems and
against the schedule plane, under unit, random and adversarial delays.
"""

from collections import Counter

import pytest

from repro.analysis import formulas
from repro.core.visibility import VisibilityStrategy
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.scheduling import AdversarialSlowestDelay, LayeredDelay, RandomDelay

DIMS = list(range(0, 6))


class TestUnitDelays:
    @pytest.mark.parametrize("d", DIMS)
    def test_correct_and_exact(self, d):
        result = run_visibility_protocol(d)
        assert result.ok, result.summary()
        assert result.total_moves == formulas.visibility_moves_exact(d)
        assert result.makespan == pytest.approx(formulas.visibility_time_steps(d))
        assert result.team_size == formulas.visibility_agents(d)

    @pytest.mark.parametrize("d", range(1, 6))
    def test_matches_schedule_plane_multiset(self, d):
        result = run_visibility_protocol(d)
        plane = Counter((m.src, m.dst) for m in VisibilityStrategy().run(d).moves)
        assert result.trace.move_multiset() == plane

    def test_all_agents_terminate_on_leaves(self):
        result = run_visibility_protocol(4)
        assert result.terminated_agents == result.team_size
        assert result.blocked_agents == 0


class TestAsynchrony:
    """Theorem 6 must hold under every delay model."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_delays(self, seed):
        result = run_visibility_protocol(4, delay=RandomDelay(seed=seed))
        assert result.ok, result.summary()
        assert result.total_moves == formulas.visibility_moves_exact(4)

    def test_extreme_jitter(self):
        result = run_visibility_protocol(
            4, delay=RandomDelay(seed=9, low=0.01, high=50.0, local_jitter=5.0)
        )
        assert result.ok, result.summary()

    def test_straggler_agents(self):
        result = run_visibility_protocol(
            4, delay=AdversarialSlowestDelay(slow_agents=[0, 1], factor=100)
        )
        assert result.ok
        assert result.makespan >= 100  # the stragglers stretch the run

    def test_slow_nodes(self):
        result = run_visibility_protocol(4, delay=LayeredDelay({15: 30.0}))
        assert result.ok

    @pytest.mark.parametrize("seed", range(3))
    def test_walker_intruder_always_caught(self, seed):
        result = run_visibility_protocol(
            4, delay=RandomDelay(seed=seed), intruder="walker"
        )
        assert result.ok
        assert result.intruder_captured


class TestModelDiscipline:
    def test_whiteboards_stay_logarithmic(self):
        """The protocol uses counters only: O(log n) whiteboard bits."""
        d = 5
        budget = 16 * (d + 2)  # generous constant * log n
        result = run_visibility_protocol(d, whiteboard_capacity_bits=budget)
        assert result.ok
        assert 0 < result.peak_whiteboard_bits <= budget

    def test_wave_structure_under_unit_delays(self):
        """Agents on class C_i depart at time i (Theorem 7's waves)."""
        from repro.topology.hypercube import Hypercube

        d = 4
        h = Hypercube(d)
        result = run_visibility_protocol(d)
        for event in result.trace.moves():
            src = event.data["src"]
            assert event.time == pytest.approx(h.class_index(src) + 1)
