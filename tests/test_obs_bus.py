"""Tests for the engine event bus: subscription, taxonomy, zero-overhead."""

import pytest

from repro.obs import EventBus
from repro.obs.events import (
    EVENT_KINDS,
    CloneEvent,
    MoveEvent,
    RunEndEvent,
    RunStartEvent,
    SpawnEvent,
    TerminateEvent,
    WaitEvent,
    WakeEvent,
    WhiteboardEvent,
)
from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.agent import Move, Terminate, WriteWhiteboard
from repro.sim.engine import Engine
from repro.topology.generic import path_graph


class TestEventBus:
    def test_publish_reaches_all_subscribers(self):
        bus = EventBus()
        got_a, got_b = [], []
        bus.subscribe(got_a.append)
        bus.subscribe(got_b.append)
        event = WaitEvent(time=1.0, agent=0, node=2)
        bus.publish(event)
        assert got_a == [event] and got_b == [event]

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        bus.unsubscribe(got.append)
        bus.publish(WaitEvent(time=0.0))
        assert got == []
        bus.unsubscribe(got.append)  # tolerant of double-removal

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe("not a function")

    def test_len_and_bool(self):
        bus = EventBus()
        assert not bus and len(bus) == 0
        bus.subscribe(lambda e: None)
        assert bus and len(bus) == 1

    def test_subscriber_exceptions_propagate(self):
        """Strict probes must be able to abort the run — errors are not
        swallowed by the bus."""

        def boom(event):
            raise RuntimeError("probe says no")

        bus = EventBus()
        bus.subscribe(boom)
        with pytest.raises(RuntimeError):
            bus.publish(WaitEvent(time=0.0))


class TestEngineEmission:
    def test_unobserved_engine_has_empty_bus(self):
        def walker(ctx):
            yield Move(1)

        engine = Engine(path_graph(2), [walker])
        assert not engine.bus
        assert engine.run().ok

    def test_event_taxonomy_on_real_run(self):
        events = []
        result = run_visibility_protocol(3, subscribers=[events.append])
        assert result.ok
        kinds = {e.kind for e in events}
        # every kind the protocol can produce appears
        for expected in ("run-start", "spawn", "move", "wait", "wake", "write",
                        "terminate", "run-end"):
            assert expected in kinds, f"missing {expected} in {sorted(kinds)}"
        assert kinds <= set(EVENT_KINDS)

    def test_run_brackets_and_ordering(self):
        events = []
        run_visibility_protocol(3, subscribers=[events.append])
        assert isinstance(events[0], RunStartEvent)
        assert isinstance(events[-1], RunEndEvent)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_move_events_match_result_totals(self):
        moves = []

        def tap(event):
            if event.kind == "move":
                moves.append(event)

        result = run_visibility_protocol(3, subscribers=[tap])
        assert len(moves) == result.total_moves
        assert all(isinstance(e, MoveEvent) for e in moves)

    def test_move_event_payload(self):
        moves = []

        def tap(event):
            if isinstance(event, MoveEvent):
                moves.append(event)

        result = run_visibility_protocol(3, subscribers=[tap])
        assert result.ok
        last = moves[-1]
        # a successful monotone run: final masks cover the network, no
        # recontaminations anywhere
        n = 8
        assert (last.clean_mask | last.guard_mask).bit_count() == n
        assert all(e.recontaminations == () for e in moves)
        assert all(e.contiguous is True for e in moves)
        # frontier empties exactly at the end
        assert last.frontier_mask == 0

    def test_clone_events(self):
        clones = []

        def tap(event):
            if isinstance(event, CloneEvent):
                clones.append(event)

        result = run_cloning_protocol(3, subscribers=[tap])
        assert len(clones) == result.team_size - 1
        assert all(e.child >= 0 and e.agent >= 0 for e in clones)

    def test_spawn_terminate_counts(self):
        spawns, terms = [], []

        def tap(event):
            if isinstance(event, SpawnEvent):
                spawns.append(event)
            elif isinstance(event, TerminateEvent):
                terms.append(event)

        result = run_visibility_protocol(3, subscribers=[tap])
        assert len(spawns) == result.team_size
        assert len(terms) == result.terminated_agents

    def test_whiteboard_events_carry_key(self):
        writes = []

        def tap(event):
            if isinstance(event, WhiteboardEvent):
                writes.append(event)

        def writer(ctx):
            yield WriteWhiteboard("flag", 1)
            yield Move(1)
            yield Terminate()

        Engine(path_graph(2), [writer], subscribers=[tap]).run()
        assert writes and writes[0].key == "flag"
        assert writes[0].kind == "write"

    def test_wait_wake_pairing(self):
        waits, wakes = [], []

        def tap(event):
            if isinstance(event, WaitEvent):
                waits.append(event)
            elif isinstance(event, WakeEvent):
                wakes.append(event)

        run_visibility_protocol(3, subscribers=[tap])
        assert waits, "visibility protocol must block on squads"
        assert wakes, "blocked agents must wake"

    def test_subscribe_after_construction(self):
        def walker(ctx):
            yield Move(1)

        events = []
        engine = Engine(path_graph(2), [walker])
        engine.subscribe(events.append)
        engine.run()
        assert any(e.kind == "move" for e in events)
        engine.unsubscribe(events.append)

    def test_mark_phase(self):
        def walker(ctx):
            yield Move(1)

        events = []
        engine = Engine(path_graph(2), [walker], subscribers=[events.append])
        engine.mark_phase("deploy")
        engine.run()
        phases = [e for e in events if e.kind == "phase"]
        assert phases and phases[0].data["name"] == "deploy"

    def test_events_are_serializable(self):
        import json

        events = []
        run_visibility_protocol(3, subscribers=[events.append])
        for event in events:
            record = event.to_dict()
            assert record["kind"] == event.kind
            json.dumps(record)  # every payload JSON-safe

    def test_strict_subscriber_error_aborts_run(self):
        def walker(ctx):
            yield Move(1)
            yield Move(0)

        def bomb(event):
            if event.kind == "move":
                raise RuntimeError("stop right there")

        with pytest.raises(RuntimeError):
            Engine(path_graph(2), [walker], subscribers=[bomb]).run()
