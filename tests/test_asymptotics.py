"""Tests for the empirical growth-rate fitting utilities."""

import math

import pytest

from repro.analysis.asymptotics import (
    GrowthFit,
    fit_growth,
    growth_ratio_table,
    is_bounded_ratio,
    ratios_to_dict,
)


class TestFitGrowth:
    def test_recovers_n_log_n(self):
        dims = list(range(3, 14))
        values = [(2**d) * d for d in dims]
        fit = fit_growth(dims, values)
        assert fit.exponent_n == pytest.approx(1.0, abs=0.02)
        assert fit.exponent_log == pytest.approx(1.0, abs=0.05)
        assert fit.residual < 1e-6

    def test_recovers_linear(self):
        dims = list(range(3, 14))
        values = [3.5 * 2**d for d in dims]
        fit = fit_growth(dims, values)
        assert fit.exponent_n == pytest.approx(1.0, abs=0.02)
        assert fit.exponent_log == pytest.approx(0.0, abs=0.05)
        assert fit.constant == pytest.approx(3.5, rel=0.05)

    def test_recovers_n_over_sqrt_log(self):
        dims = list(range(4, 16))
        values = [(2**d) / math.sqrt(d) for d in dims]
        fit = fit_growth(dims, values)
        assert fit.exponent_n == pytest.approx(1.0, abs=0.02)
        assert fit.exponent_log == pytest.approx(-0.5, abs=0.05)

    def test_needs_three_samples(self):
        with pytest.raises(ValueError):
            fit_growth([2, 3], [4, 8])

    def test_ignores_small_d_and_zeros(self):
        dims = [0, 1, 2, 3, 4, 5, 6]
        values = [0, 0] + [2**d for d in dims[2:]]
        fit = fit_growth(dims, values)
        assert fit.exponent_n == pytest.approx(1.0, abs=0.05)

    def test_describe(self):
        fit = GrowthFit(1.0, 0.5, 2.0, 0.001)
        text = fit.describe()
        assert "n^1.000" in text and "(log n)^0.500" in text


class TestRatios:
    def test_table_rows(self):
        rows = growth_ratio_table([2, 3], [8, 24], lambda d: float(2**d * d))
        assert rows[0] == (2, 8.0, 8.0, 1.0)
        assert rows[1] == (3, 24.0, 24.0, 1.0)

    def test_ratios_to_dict(self):
        rows = growth_ratio_table([2, 3], [8, 24], lambda d: float(2**d * d))
        assert ratios_to_dict(rows) == {2: 1.0, 3: 1.0}

    def test_bounded_accepts_flat(self):
        dims = list(range(2, 12))
        values = [2**d * d for d in dims]
        assert is_bounded_ratio(dims, values, lambda d: 2**d * d)

    def test_bounded_rejects_diverging(self):
        dims = list(range(2, 12))
        values = [2**d * d * d for d in dims]  # n log^2 n vs n log n reference
        assert not is_bounded_ratio(dims, values, lambda d: 2**d * d)

    def test_bounded_with_single_point(self):
        assert is_bounded_ratio([3], [10], lambda d: 1.0)
