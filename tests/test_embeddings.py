"""Tests for the hypercube structure utilities."""

from math import comb

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.embeddings import (
    antipode,
    diameter,
    distance_distribution,
    hamiltonian_cycle,
    level_matching,
    split_subcubes,
)
from repro.topology.hypercube import Hypercube


class TestHamiltonianCycle:
    @pytest.mark.parametrize("d", range(2, 9))
    def test_is_hamiltonian(self, d):
        h = Hypercube(d)
        cycle = hamiltonian_cycle(h)
        assert sorted(cycle) == list(h.nodes())
        for a, b in zip(cycle, cycle[1:]):
            assert h.has_edge(a, b)
        assert h.has_edge(cycle[-1], cycle[0])

    def test_small_cubes_rejected(self):
        with pytest.raises(TopologyError):
            hamiltonian_cycle(Hypercube(1))


class TestSubcubes:
    @pytest.mark.parametrize("d", range(1, 7))
    def test_split_halves(self, d):
        h = Hypercube(d)
        for position in range(1, d + 1):
            zero, one = split_subcubes(h, position)
            assert len(zero) == len(one) == h.n // 2
            assert sorted(zero + one) == list(h.nodes())

    def test_cross_edges_flip_position(self):
        h = Hypercube(4)
        zero, one = split_subcubes(h, 2)
        zero_set = set(zero)
        for x in zero:
            partner = x ^ 0b0010
            assert partner in one
            assert h.has_edge(x, partner)
        # no other cross edges
        for x in zero:
            for y in h.neighbors(x):
                if y not in zero_set:
                    assert y == x ^ 0b0010

    def test_bad_position(self):
        with pytest.raises(TopologyError):
            split_subcubes(Hypercube(3), 0)
        with pytest.raises(TopologyError):
            split_subcubes(Hypercube(3), 4)


class TestDistances:
    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_distribution_is_binomial_everywhere(self, d, data):
        """Vertex transitivity: the same binomial from every node — why the
        paper can fix the homebase WLOG."""
        h = Hypercube(d)
        node = data.draw(st.integers(min_value=0, max_value=h.n - 1))
        dist = distance_distribution(h, node)
        assert dist == {k: comb(d, k) for k in range(d + 1)}

    @pytest.mark.parametrize("d", range(1, 8))
    def test_antipode(self, d):
        h = Hypercube(d)
        for node in (0, h.n - 1, h.n // 2):
            a = antipode(h, node)
            assert h.distance(node, a) == d == diameter(h)
            assert antipode(h, a) == node


class TestLevelMatching:
    @pytest.mark.parametrize("d", range(2, 9))
    def test_matching_valid_below_half(self, d):
        h = Hypercube(d)
        for level in range((d + 1) // 2):
            matching = level_matching(h, level)
            assert len(matching) == comb(d, level)
            assert len(set(matching.values())) == len(matching)
            for x, y in matching.items():
                assert h.has_edge(x, y)
                assert h.level(y) == level + 1

    def test_rejected_above_half(self):
        h = Hypercube(4)
        with pytest.raises(TopologyError):
            level_matching(h, 2)  # C(4,2)=6 cannot inject into C(4,3)=4
        with pytest.raises(TopologyError):
            level_matching(h, 4)
