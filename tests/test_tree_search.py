"""Tests for contiguous tree search (Barrière et al. style recursion).

The closed recursion is validated against the brute-force optimum on an
exhaustive family of small trees plus hypothesis-generated random trees.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import ScheduleVerifier
from repro.errors import TopologyError
from repro.search.optimal import optimal_search_number
from repro.search.tree_search import (
    rooted_children,
    tree_search_number,
    tree_strategy_schedule,
)
from repro.topology.generic import path_graph, ring_graph, star_graph, tree_graph


def random_tree(parents):
    return tree_graph(parents)


# every tree on <= 7 nodes, encoded by parent arrays
def all_parent_arrays(n):
    if n == 1:
        yield []
        return
    import itertools

    ranges = [range(i + 1) for i in range(n - 1)]
    yield from (list(p) for p in itertools.product(*ranges))


class TestRecursion:
    def test_single_node(self):
        assert tree_search_number(tree_graph([])) == 1

    def test_path_needs_one(self):
        assert tree_search_number(path_graph(9)) == 1

    def test_star_needs_two(self):
        assert tree_search_number(star_graph(5)) == 2

    def test_complete_binary_trees(self):
        # g grows by 1 per level of branching
        binary2 = tree_graph([0, 0, 1, 1, 2, 2])
        assert tree_search_number(binary2) == 3

    def test_rejects_non_tree(self):
        with pytest.raises(TopologyError):
            tree_search_number(ring_graph(4))

    def test_rooted_children_orientation(self):
        g = tree_graph([0, 0, 1])
        children = rooted_children(g, 0)
        assert children[0] == [1, 2]
        assert children[1] == [3]
        children_from_leaf = rooted_children(g, 3)
        assert children_from_leaf[3] == [1]

    @pytest.mark.parametrize("n", range(1, 7))
    def test_matches_brute_force_exhaustively(self, n):
        """The recursion equals the true optimum on EVERY tree of <= 6
        nodes (rooted at node 0)."""
        for parents in all_parent_arrays(n):
            g = tree_graph(parents)
            assert tree_search_number(g) == optimal_search_number(g), parents

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_matches_brute_force_random(self, data):
        n = data.draw(st.integers(min_value=2, max_value=9))
        parents = [
            data.draw(st.integers(min_value=0, max_value=i)) for i in range(n - 1)
        ]
        g = tree_graph(parents)
        assert tree_search_number(g) == optimal_search_number(g)


class TestSchedule:
    @pytest.mark.parametrize(
        "parents",
        [
            [],
            [0],
            [0, 0],
            [0, 0, 0, 0],
            [0, 1, 2, 3],
            [0, 0, 1, 1, 2, 2],
            [0, 1, 1, 0, 3, 5, 5],
            [0, 0, 0, 1, 1, 2, 2, 3, 3],
        ],
    )
    def test_schedule_verifies_with_recursion_team(self, parents):
        g = tree_graph(parents)
        schedule = tree_strategy_schedule(g)
        assert schedule.team_size == tree_search_number(g)
        report = ScheduleVerifier(g).verify(schedule)
        assert report.ok, (parents, report.summary())

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_trees_verify(self, data):
        n = data.draw(st.integers(min_value=2, max_value=12))
        parents = [
            data.draw(st.integers(min_value=0, max_value=i)) for i in range(n - 1)
        ]
        g = tree_graph(parents)
        schedule = tree_strategy_schedule(g)
        report = ScheduleVerifier(g).verify(schedule)
        assert report.ok

    def test_linear_moves(self):
        """The tree strategy performs O(n * agents) moves — linear for
        bounded team, as [1] promises for trees."""
        for n in (4, 8, 16):
            g = path_graph(n)
            schedule = tree_strategy_schedule(g)
            assert schedule.total_moves <= 2 * n

    def test_everyone_returns_home(self):
        g = tree_graph([0, 0, 1, 1, 2, 2])
        schedule = tree_strategy_schedule(g)
        assert set(schedule.final_positions().values()) == {0}
