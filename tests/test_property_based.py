"""Property-based tests (hypothesis) on the core invariants.

The paper's claims are universally quantified — over dimensions, over
asynchronous schedules, over intruder behaviour.  These tests sample that
space: random dimensions, random delay seeds, random walker intruders,
random tamperings (which must be caught).
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.schedule import Move, Schedule
from repro.core.strategy import get_strategy
from repro.errors import ScheduleError
from repro.sim.scheduling import RandomDelay
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

STRATEGIES = ["clean", "visibility", "cloning", "synchronous", "level-sweep"]

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@st.composite
def strategy_and_dim(draw):
    name = draw(st.sampled_from(STRATEGIES))
    d = draw(st.integers(min_value=0, max_value=7))
    return name, d


class TestUniversalInvariants:
    @SLOW
    @given(strategy_and_dim())
    def test_every_schedule_is_monotone_contiguous_complete(self, pair):
        name, d = pair
        schedule = get_strategy(name).run(d)
        report = verify_schedule(schedule)
        assert report.ok, report.summary()

    @SLOW
    @given(strategy_and_dim())
    def test_schedules_are_deterministic(self, pair):
        name, d = pair
        a = get_strategy(name).run(d)
        b = get_strategy(name).run(d)
        assert a.moves == b.moves
        assert a.team_size == b.team_size

    @SLOW
    @given(st.integers(min_value=0, max_value=7))
    def test_team_size_ordering(self, d):
        """Section 1.3 comparisons: CLEAN's whole point is fewer agents
        than n/2 (true from d >= 4 on); the naive sweep always needs at
        least as many as CLEAN (d >= 2); cloning == visibility."""
        clean = get_strategy("clean").run(d).team_size
        vis = get_strategy("visibility").run(d).team_size
        sweep = get_strategy("level-sweep").run(d).team_size
        if d >= 4:
            assert vis >= clean
        if d >= 2:
            assert sweep >= clean
        assert get_strategy("cloning").run(d).team_size == vis

    @SLOW
    @given(st.integers(min_value=1, max_value=7))
    def test_visibility_strictly_faster(self, d):
        """log n steps vs the synchronizer's sequential walk."""
        clean = get_strategy("clean").run(d).makespan
        vis = get_strategy("visibility").run(d).makespan
        assert vis <= clean

    @SLOW
    @given(st.integers(min_value=0, max_value=7))
    def test_every_node_visited_once_per_strategy(self, d):
        for name in STRATEGIES:
            schedule = get_strategy(name).run(d)
            order = schedule.first_visit_order()
            assert sorted(order) == list(range(1 << d)), name


class TestScheduleJsonRoundTrip:
    @SLOW
    @given(strategy_and_dim())
    def test_round_trip_preserves_everything(self, pair):
        name, d = pair
        schedule = get_strategy(name).run(min(d, 5))
        back = Schedule.from_json(schedule.to_json())
        assert back.moves == schedule.moves
        assert back.team_size == schedule.team_size
        assert back.uses_cloning == schedule.uses_cloning
        assert verify_schedule(back).ok == verify_schedule(schedule).ok


class TestTamperDetection:
    """Mutate a correct schedule; the verifier (or structure check) must
    notice every mutation that matters."""

    @SLOW
    @given(
        st.integers(min_value=2, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_dropping_a_deploy_breaks_completeness(self, d, rng):
        schedule = get_strategy("visibility").run(d)
        moves = list(schedule.moves)
        victim = rng.randrange(len(moves))
        tampered = Schedule(
            dimension=d,
            strategy="tampered",
            moves=moves[:victim] + moves[victim + 1 :],
            team_size=schedule.team_size,
        )
        try:
            report = verify_schedule(tampered)
        except ScheduleError:
            return  # structurally invalid: caught even earlier
        assert not report.ok  # a missing traversal must break something

    @SLOW
    @given(st.integers(min_value=2, max_value=5), st.randoms(use_true_random=False))
    def test_redirecting_a_move_is_caught(self, d, rng):
        h = Hypercube(d)
        schedule = get_strategy("visibility").run(d)
        moves = list(schedule.moves)
        victim = rng.randrange(len(moves))
        m = moves[victim]
        others = [y for y in h.neighbors(m.src) if y != m.dst]
        moves[victim] = Move(
            agent=m.agent, src=m.src, dst=rng.choice(others), time=m.time,
            role=m.role, kind=m.kind,
        )
        tampered = Schedule(
            dimension=d, strategy="tampered", moves=moves, team_size=schedule.team_size
        )
        try:
            report = verify_schedule(tampered)
        except ScheduleError:
            return
        assert not report.ok


class TestAsynchronyInvariance:
    """Theorem 6 / Theorem 1: delay models never change correctness or the
    move multiset of the asynchronous protocols."""

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_visibility_protocol_random_delays(self, seed):
        from repro.protocols.visibility_protocol import run_visibility_protocol

        result = run_visibility_protocol(3, delay=RandomDelay(seed=seed))
        assert result.ok, result.summary()
        assert result.total_moves == formulas.visibility_moves_exact(3)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_cloning_protocol_random_delays(self, seed):
        from repro.protocols.cloning_protocol import run_cloning_protocol

        result = run_cloning_protocol(3, delay=RandomDelay(seed=seed))
        assert result.ok
        assert result.total_moves == formulas.cloning_moves(3)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_clean_protocol_random_delays(self, seed):
        from repro.protocols.clean_protocol import run_clean_protocol

        result = run_clean_protocol(3, delay=RandomDelay(seed=seed))
        assert result.ok, result.summary()

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_walker_intruder_always_captured(self, seed):
        from repro.protocols.visibility_protocol import run_visibility_protocol

        result = run_visibility_protocol(
            4, delay=RandomDelay(seed=seed), intruder="walker"
        )
        assert result.intruder_captured


class TestStructuralProperties:
    @SLOW
    @given(st.integers(min_value=1, max_value=10))
    def test_tree_edges_partition_crossings(self, d):
        """In the visibility schedule, the multiset of crossed edges is
        exactly {tree edge -> squad size}."""
        schedule = get_strategy("visibility").run(min(d, 8))
        dd = schedule.dimension
        tree = BroadcastTree(dd)
        crossings = Counter((m.src, m.dst) for m in schedule.moves)
        expected = Counter()
        for parent, child in tree.edges():
            expected[(parent, child)] = formulas.agents_for_type(tree.node_type(child))
        assert crossings == expected

    @SLOW
    @given(st.integers(min_value=0, max_value=8))
    def test_exact_formula_triplet(self, d):
        vis = get_strategy("visibility").run(d)
        assert vis.team_size == formulas.visibility_agents(d)
        assert vis.total_moves == formulas.visibility_moves_exact(d)
        assert vis.makespan == formulas.visibility_time_steps(d)
        clone = get_strategy("cloning").run(d)
        assert clone.team_size == formulas.cloning_agents(d)
        assert clone.total_moves == formulas.cloning_moves(d)
