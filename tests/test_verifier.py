"""Tests that the verifier actually catches violations (seeded failures)."""

import pytest

from repro.analysis.verify import ScheduleVerifier, verify_schedule
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.errors import (
    ContiguityError,
    IncompleteCleaningError,
    RecontaminationError,
    ScheduleError,
)
from repro.topology.hypercube import Hypercube


def mk(agent, src, dst, time):
    return Move(agent=agent, src=src, dst=dst, time=time, role=AgentRole.AGENT, kind=MoveKind.DEPLOY)


def schedule_of(moves, team, d=2, **kwargs):
    return Schedule(dimension=d, strategy="seeded", moves=moves, team_size=team, **kwargs)


class TestCatchesViolations:
    def test_recontamination_detected(self):
        # H_2: one agent sweeps 0 -> 1 -> 0: vacating 1 next to contaminated 3
        s = schedule_of([mk(0, 0, 1, 1), mk(0, 1, 0, 2)], team=1)
        report = verify_schedule(s)
        assert not report.monotone
        assert not report.ok
        with pytest.raises(RecontaminationError):
            report.raise_if_failed()

    def test_incomplete_cleaning_detected(self):
        s = schedule_of([mk(0, 0, 1, 1)], team=2)
        report = verify_schedule(s)
        assert report.monotone
        assert not report.complete
        assert not report.intruder_captured
        with pytest.raises(IncompleteCleaningError):
            report.raise_if_failed()

    def test_complete_schedule_passes(self):
        # H_1 with one agent: 0 -> 1 cleans everything
        s = schedule_of([mk(0, 0, 1, 1)], team=1, d=1)
        report = verify_schedule(s)
        assert report.ok
        report.raise_if_failed()  # no exception

    def test_structure_error_raises_immediately(self):
        s = schedule_of([mk(0, 1, 3, 1)], team=1)  # starts away from homebase
        with pytest.raises(ScheduleError):
            verify_schedule(s)

    def test_non_edge_rejected(self):
        s = schedule_of([mk(0, 0, 3, 1)], team=1)
        with pytest.raises(ScheduleError):
            verify_schedule(s)

    def test_violations_recorded_with_causes(self):
        s = schedule_of([mk(0, 0, 1, 1), mk(0, 1, 0, 2)], team=1)
        report = verify_schedule(s)
        assert any("recontaminated" in v for v in report.violations)


class TestReportContents:
    def test_clean_times_and_visit_times(self):
        # H_1 sweep
        s = schedule_of([mk(0, 0, 1, 1)], team=2, d=1)
        report = verify_schedule(s)
        assert report.visit_times == {0: 0, 1: 1}
        # node 0 still holds the second agent; node 1 guarded: no clean times
        assert report.clean_times == {}

    def test_first_visit_order(self):
        s = schedule_of([mk(0, 0, 1, 1), mk(1, 0, 2, 2), mk(0, 1, 3, 3)], team=3)
        report = verify_schedule(s)
        assert report.first_visit_order == [0, 1, 2, 3]

    def test_summary_strings(self):
        s = schedule_of([mk(0, 0, 1, 1)], team=1, d=1)
        report = verify_schedule(s)
        assert "[OK]" in report.summary()
        bad = verify_schedule(schedule_of([mk(0, 0, 1, 1)], team=2))
        assert "[FAILED]" in bad.summary()

    def test_explicit_topology(self):
        from repro.topology.generic import path_graph

        g = path_graph(3)
        s = Schedule(
            dimension=0,
            strategy="path-sweep",
            moves=[mk(0, 0, 1, 1), mk(0, 1, 2, 2)],
            team_size=1,
        )
        report = ScheduleVerifier(g).verify(s)
        assert report.ok


class TestContiguityDetection:
    def test_disconnection_detected(self):
        """A reckless dash to the antipode of H_3 leaves two guarded islands
        (the abandoned corridor recontaminates), which both the
        recontamination and the contiguity predicates must flag."""
        from repro.sim.contamination import ContaminationMap

        h = Hypercube(3)
        cmap = ContaminationMap(h, strict=False)
        cmap.place_agent(0)
        cmap.place_agent(0)
        for src, dst in [(0, 1), (1, 3), (3, 7)]:
            cmap.move_agent(src, dst)
        assert not cmap.is_monotone()
        assert not cmap.is_contiguous()
        assert cmap.guarded_nodes() == {0, 7}

    def test_teleport_placement_refused(self):
        """Placing an agent on a far contaminated node (non-contiguous
        deployment) is rejected by the model itself."""
        from repro.errors import SimulationError
        from repro.sim.contamination import ContaminationMap

        cmap = ContaminationMap(Hypercube(3), strict=False)
        cmap.place_agent(0)
        with pytest.raises(SimulationError):
            cmap.place_agent(4)

    def test_every_move_mode_passes_on_valid(self):
        s = schedule_of([mk(0, 0, 1, 1)], team=1, d=1)
        report = verify_schedule(s, check_contiguity_every_move=True)
        assert report.ok
