"""Tests for the repro-search command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "-d", "4"])
        assert args.strategy == "visibility"
        assert args.dimension == 4

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-d", "4", "-s", "nope"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "-d", "3", "-s", "clean"]) == 0
        out = capsys.readouterr().out
        assert "strategy      : clean" in out
        assert "[OK]" in out

    def test_run_show_order(self, capsys):
        assert main(["run", "-d", "3", "--show-order"]) == 0
        assert "cleaning order" in capsys.readouterr().out

    def test_table(self, capsys):
        assert main(["table", "-d", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "visibility" in out and "cloning" in out
        assert "  8 " in out  # n for d=3

    @pytest.mark.parametrize("which", ["fig1", "fig2", "fig3", "fig4"])
    def test_figures(self, which, capsys):
        assert main(["figure", which, "-d", "4"]) == 0
        assert capsys.readouterr().out.strip()

    def test_figure_default_dimensions(self, capsys):
        assert main(["figure", "fig1"]) == 0
        assert "T(6)" in capsys.readouterr().out

    def test_figure_profile(self, capsys):
        assert main(["figure", "profile", "-d", "4"]) == 0
        out = capsys.readouterr().out
        assert "deployed agents over time" in out
        assert "clean" in out and "visibility" in out

    def test_figure_scoreboard(self, capsys):
        assert main(["figure", "scoreboard", "-d", "5"]) == 0
        out = capsys.readouterr().out
        assert "LB" in out and "harper" in out
        assert " 13 " in out  # LB(5)

    def test_formulas(self, capsys):
        assert main(["formulas", "-d", "6"]) == 0
        out = capsys.readouterr().out
        assert "Thm 2" in out and "Lemma 3" in out

    @pytest.mark.parametrize("protocol", ["visibility", "cloning", "synchronous"])
    def test_simulate_unit(self, protocol, capsys):
        assert main(["simulate", "-d", "3", "-p", protocol]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_simulate_clean_random(self, capsys):
        assert main(["simulate", "-d", "3", "-p", "clean", "--delays", "random"]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_simulate_walker(self, capsys):
        assert main(["simulate", "-d", "3", "--walker-intruder"]) == 0

    def test_simulate_broken_synchrony_exits_nonzero(self, capsys):
        """Synchronous protocol under random delays may fail -> exit 1; we
        pick a seed known to break it (documented Section 5 limitation)."""
        code = main(
            ["simulate", "-d", "4", "-p", "synchronous", "--delays", "random", "--seed", "0"]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "-d", "2", "3", "-s", "visibility", "cloning"]) == 0
        out = capsys.readouterr().out
        assert "agents" in out and "cloning" in out

    def test_sweep_csv(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert main(["sweep", "-d", "2", "-s", "clean", "--csv", str(target)]) == 0
        assert "strategy,d,n" in target.read_text()

    def test_run_watch_and_save(self, tmp_path, capsys):
        target = tmp_path / "schedule.json"
        code = main(
            ["run", "-d", "2", "--homebase", "3", "--watch", "--save", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "contaminated left" in out
        assert target.exists()

    def test_verify_round_trip(self, tmp_path, capsys):
        target = tmp_path / "schedule.json"
        assert main(["run", "-d", "3", "--save", str(target)]) == 0
        capsys.readouterr()
        assert main(["verify", str(target)]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_verify_rejects_tampered(self, tmp_path, capsys):
        import json

        target = tmp_path / "schedule.json"
        assert main(["run", "-d", "2", "--save", str(target)]) == 0
        data = json.loads(target.read_text())
        data["moves"] = data["moves"][:-1]  # drop the last traversal
        target.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["verify", str(target)]) == 1
        assert "FAILED" in capsys.readouterr().out
