"""Tests for the repro-search command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "-d", "4"])
        assert args.strategy == "visibility"
        assert args.dimension == 4

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-d", "4", "-s", "nope"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "-d", "3", "-s", "clean"]) == 0
        out = capsys.readouterr().out
        assert "strategy      : clean" in out
        assert "[OK]" in out

    def test_run_show_order(self, capsys):
        assert main(["run", "-d", "3", "--show-order"]) == 0
        assert "cleaning order" in capsys.readouterr().out

    def test_table(self, capsys):
        assert main(["table", "-d", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "visibility" in out and "cloning" in out
        assert "  8 " in out  # n for d=3

    @pytest.mark.parametrize("which", ["fig1", "fig2", "fig3", "fig4"])
    def test_figures(self, which, capsys):
        assert main(["figure", which, "-d", "4"]) == 0
        assert capsys.readouterr().out.strip()

    def test_figure_default_dimensions(self, capsys):
        assert main(["figure", "fig1"]) == 0
        assert "T(6)" in capsys.readouterr().out

    def test_figure_profile(self, capsys):
        assert main(["figure", "profile", "-d", "4"]) == 0
        out = capsys.readouterr().out
        assert "deployed agents over time" in out
        assert "clean" in out and "visibility" in out

    def test_figure_scoreboard(self, capsys):
        assert main(["figure", "scoreboard", "-d", "5"]) == 0
        out = capsys.readouterr().out
        assert "LB" in out and "harper" in out
        assert " 13 " in out  # LB(5)

    def test_formulas(self, capsys):
        assert main(["formulas", "-d", "6"]) == 0
        out = capsys.readouterr().out
        assert "Thm 2" in out and "Lemma 3" in out

    @pytest.mark.parametrize("protocol", ["visibility", "cloning", "synchronous"])
    def test_simulate_unit(self, protocol, capsys):
        assert main(["simulate", "-d", "3", "-p", protocol]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_simulate_clean_random(self, capsys):
        assert main(["simulate", "-d", "3", "-p", "clean", "--delays", "random"]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_simulate_walker(self, capsys):
        assert main(["simulate", "-d", "3", "--walker-intruder"]) == 0

    def test_simulate_broken_synchrony_exits_nonzero(self, capsys):
        """Synchronous protocol under random delays may fail -> exit 1; we
        pick a seed known to break it (documented Section 5 limitation)."""
        code = main(
            ["simulate", "-d", "4", "-p", "synchronous", "--delays", "random", "--seed", "0"]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "-d", "2", "3", "-s", "visibility", "cloning"]) == 0
        out = capsys.readouterr().out
        assert "agents" in out and "cloning" in out

    def test_sweep_csv(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert main(["sweep", "-d", "2", "-s", "clean", "--csv", str(target)]) == 0
        assert "strategy,d,n" in target.read_text()

    def test_run_watch_and_save(self, tmp_path, capsys):
        target = tmp_path / "schedule.json"
        code = main(
            ["run", "-d", "2", "--homebase", "3", "--watch", "--save", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "contaminated left" in out
        assert target.exists()

    def test_verify_round_trip(self, tmp_path, capsys):
        target = tmp_path / "schedule.json"
        assert main(["run", "-d", "3", "--save", str(target)]) == 0
        capsys.readouterr()
        assert main(["verify", str(target)]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_verify_rejects_tampered(self, tmp_path, capsys):
        import json

        target = tmp_path / "schedule.json"
        assert main(["run", "-d", "2", "--save", str(target)]) == 0
        data = json.loads(target.read_text())
        data["moves"] = data["moves"][:-1]  # drop the last traversal
        target.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["verify", str(target)]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestSweepCsvWriting:
    def test_missing_parent_dirs_are_created(self, tmp_path, capsys):
        target = tmp_path / "deep" / "nested" / "out.csv"
        assert main(["sweep", "-d", "3", "-s", "clean", "--csv", str(target)]) == 0
        assert target.exists()
        assert f"CSV written to {target}" in capsys.readouterr().out

    def test_csv_ends_with_newline(self, tmp_path):
        target = tmp_path / "out.csv"
        main(["sweep", "-d", "3", "-s", "clean", "--csv", str(target)])
        text = target.read_text()
        assert text.endswith("\n") and not text.endswith("\n\n")
        assert text.splitlines()[0] == "strategy,d,n,agents,moves,agent_moves,sync_moves,steps"

    def test_unwritable_path_is_a_clean_error(self, capsys):
        code = main(
            ["sweep", "-d", "3", "-s", "clean", "--csv", "/proc/nonexistent/out.csv"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot write CSV to /proc/nonexistent/out.csv" in err
        assert "Traceback" not in err


class TestParallelFlags:
    def test_defaults_keep_the_serial_path(self):
        args = build_parser().parse_args(["sweep", "-d", "3"])
        assert args.jobs == 1 and args.resume is None and args.timeout is None

    def test_parallel_sweep_matches_serial_output(self, capsys):
        assert main(["sweep", "-d", "3", "4", "-s", "clean", "visibility"]) == 0
        serial = capsys.readouterr().out
        code = main(
            ["sweep", "-d", "3", "4", "-s", "clean", "visibility", "--jobs", "2"]
        )
        assert code == 0
        assert capsys.readouterr().out == serial

    def test_crash_injected_sweep_recovers(self, tmp_path, capsys, monkeypatch):
        from repro.exec import CRASH_ENV

        monkeypatch.setenv(CRASH_ENV, "sweep:clean:d=3")
        ckpt = tmp_path / "run.jsonl"
        code = main(
            [
                "sweep", "-d", "3", "-s", "clean", "visibility",
                "--jobs", "2", "--resume", str(ckpt),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "retried sweep:clean:d=3: ok on attempt 2" in out
        assert ckpt.exists()
        manifest = tmp_path / "run.manifest.json"
        assert manifest.exists()
        assert "merged manifest written to" in out

    def test_permanently_failed_cell_exits_one(self, capsys, monkeypatch):
        from repro.exec import CRASH_ENV

        monkeypatch.setenv(CRASH_ENV, "sweep:clean:d=3::99")
        code = main(
            ["sweep", "-d", "3", "-s", "clean", "visibility",
             "--jobs", "2", "--retries", "1"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out  # both the table cell and the epilogue line
        assert "FAILED sweep:clean:d=3 after 2 attempt(s)" in out

    def test_resume_serves_cached_cells(self, tmp_path, capsys):
        ckpt = tmp_path / "run.jsonl"
        argv = ["sweep", "-d", "3", "-s", "clean", "--resume", str(ckpt)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert second.splitlines()[:4] == first.splitlines()[:4]  # same table

    def test_parallel_experiment(self, capsys):
        from repro.analysis.experiments import experiment_ids

        exp = experiment_ids()[0]
        code = main(["experiment", exp, "--jobs", "2"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert exp in out
