"""Hypothesis stateful fuzzing of the contamination dynamics.

A rule-based state machine drives a :class:`ContaminationMap` with random
placements and random (legal and illegal) moves, holding the global
invariants after every action:

* the census always partitions the node set;
* the decontaminated set never shrinks while monotone;
* recontamination events appear exactly when a vacated node has a
  contaminated neighbour;
* the possible-location intruder region is exactly the contaminated set.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.states import NodeState
from repro.errors import SimulationError
from repro.sim.contamination import ContaminationMap
from repro.sim.intruder import ReachableSetIntruder
from repro.topology.generic import grid_graph, hypercube_graph, ring_graph

GRAPHS = [hypercube_graph(3), ring_graph(6), grid_graph(2, 4)]


class ContaminationMachine(RuleBasedStateMachine):
    @initialize(graph=st.sampled_from(GRAPHS), team=st.integers(min_value=1, max_value=4))
    def setup(self, graph, team):
        self.graph = graph
        self.cmap = ContaminationMap(graph, strict=False)
        for _ in range(team):
            self.cmap.place_agent(0)
        self.intruder = ReachableSetIntruder(self.cmap)
        self.decontaminated_before = self.cmap.decontaminated_nodes()

    @rule(data=st.data())
    def move_some_agent(self, data):
        guarded = sorted(self.cmap.guarded_nodes())
        if not guarded:
            return
        src = data.draw(st.sampled_from(guarded))
        dst = data.draw(st.sampled_from(sorted(self.graph.neighbors(src))))
        was_monotone = self.cmap.is_monotone()
        self.cmap.move_agent(src, dst)
        self.intruder.observe(self.cmap)
        # recontamination accounting: events only ever grow, and a fresh
        # event implies src was left with a contaminated neighbour
        if was_monotone and not self.cmap.is_monotone():
            node, cause = self.cmap.recontamination_events[0]
            assert self.cmap.guards(node) == 0

    @rule()
    def clone_at_guarded(self):
        guarded = sorted(self.cmap.guarded_nodes())
        if guarded:
            self.cmap.place_agent(guarded[0])

    @rule()
    def illegal_move_rejected(self):
        # moving from an empty node must raise, never corrupt state
        empty = [x for x in self.graph.nodes() if self.cmap.guards(x) == 0]
        if empty:
            before = self.cmap.census()
            with pytest.raises(SimulationError):
                self.cmap.move_agent(empty[0], self.graph.neighbors(empty[0])[0])
            assert self.cmap.census() == before

    @invariant()
    def census_partitions(self):
        if not hasattr(self, "cmap"):
            return
        census = self.cmap.census()
        assert sum(census.values()) == self.graph.n

    @invariant()
    def monotone_region_growth(self):
        if not hasattr(self, "cmap"):
            return
        current = self.cmap.decontaminated_nodes()
        if self.cmap.is_monotone():
            assert self.decontaminated_before <= current
        self.decontaminated_before = current

    @invariant()
    def intruder_region_is_contaminated_set(self):
        if not hasattr(self, "cmap"):
            return
        assert self.intruder.region == self.cmap.contaminated_nodes()

    @invariant()
    def guard_counts_non_negative(self):
        if not hasattr(self, "cmap"):
            return
        for x in self.graph.nodes():
            assert self.cmap.guards(x) >= 0


ContaminationMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestContaminationMachine = ContaminationMachine.TestCase
