"""Tests for the generic BFS frontier-sweep strategy."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import ScheduleVerifier
from repro.errors import TopologyError
from repro.search.frontier_sweep import bfs_boundary_width, frontier_sweep_schedule
from repro.topology.generic import (
    GraphAdapter,
    complete_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)

GRAPHS = [
    path_graph(8),
    ring_graph(7),
    star_graph(5),
    grid_graph(3, 4),
    complete_graph(5),
    hypercube_graph(3),
    hypercube_graph(4),
    tree_graph([0, 0, 1, 1, 2, 2]),
]


class TestCorrectness:
    @pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
    def test_verifies_on_standard_graphs(self, graph):
        schedule = frontier_sweep_schedule(graph)
        report = ScheduleVerifier(graph).verify(schedule)
        assert report.ok, (graph.name, report.summary())

    @pytest.mark.parametrize("homebase", [0, 3, 7])
    def test_any_homebase(self, homebase):
        g = grid_graph(3, 3)
        schedule = frontier_sweep_schedule(g, homebase=homebase)
        report = ScheduleVerifier(g).verify(schedule)
        assert report.ok

    def test_star_needs_two(self):
        """The homebase-guard fix: a star centre is never abandoned."""
        g = star_graph(5)
        schedule = frontier_sweep_schedule(g)
        assert schedule.team_size == 2
        assert ScheduleVerifier(g).verify(schedule).ok

    def test_single_node(self):
        g = GraphAdapter(1, [])
        schedule = frontier_sweep_schedule(g)
        assert schedule.total_moves == 0
        assert schedule.team_size == 1

    def test_disconnected_rejected(self):
        g = GraphAdapter(4, [(0, 1), (2, 3)])
        with pytest.raises(TopologyError):
            frontier_sweep_schedule(g)

    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(st.data())
    def test_random_connected_graphs(self, data):
        """Fuzz: random connected graphs (random tree + random extra edges)
        always get a verified monotone contiguous cleaning."""
        from .conftest import connected_graphs

        g = data.draw(connected_graphs(max_nodes=12))
        homebase = data.draw(st.integers(min_value=0, max_value=g.n - 1))
        schedule = frontier_sweep_schedule(g, homebase=homebase)
        report = ScheduleVerifier(g).verify(schedule)
        assert report.ok, report.summary()


class TestCost:
    @pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
    def test_team_bounded_by_boundary_width(self, graph):
        schedule = frontier_sweep_schedule(graph)
        width = bfs_boundary_width(graph)
        assert schedule.team_size <= width + 1
        assert schedule.metadata["boundary_width"] == width

    def test_path_width_one(self):
        assert bfs_boundary_width(path_graph(10)) == 1

    def test_grid_width_scales_with_side(self):
        w3 = bfs_boundary_width(grid_graph(3, 3))
        w5 = bfs_boundary_width(grid_graph(5, 5))
        assert w5 > w3

    def test_hypercube_frontier_beats_clean_team_slightly(self):
        """Measured observation (documented in EXPERIMENTS.md): per-node
        releases make the generic BFS sweep *slightly* thriftier with
        agents than Algorithm CLEAN on measured H_d — the boundary of a
        prefix is smaller than two full binomial levels — while staying in
        the same Theta(C(d, d/2)) order."""
        from repro.analysis.formulas import clean_peak_agents
        from repro.analysis.counting import central_binomial

        for d in (4, 5, 6):
            team = frontier_sweep_schedule(hypercube_graph(d)).team_size
            assert team <= clean_peak_agents(d)
            assert team >= central_binomial(d)  # same asymptotic order

    def test_moves_polynomial(self):
        g = grid_graph(4, 4)
        schedule = frontier_sweep_schedule(g)
        assert schedule.total_moves <= 4 * g.n * bfs_boundary_width(g)
