"""Unit tests for the intruder models."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.contamination import ContaminationMap
from repro.sim.intruder import ReachableSetIntruder, WalkerIntruder
from repro.topology.generic import path_graph, star_graph
from repro.topology.hypercube import Hypercube


def swept_path_map(n):
    """A path being swept left to right; returns (cmap, sweep_fn)."""
    g = path_graph(n)
    cmap = ContaminationMap(g, strict=False)
    cmap.place_agent(0)
    return cmap


class TestReachableSet:
    def test_region_is_contaminated_set(self):
        cmap = swept_path_map(4)
        intr = ReachableSetIntruder(cmap)
        assert intr.region == {1, 2, 3}
        assert not intr.captured

    def test_shrinks_with_sweep(self):
        cmap = swept_path_map(3)
        intr = ReachableSetIntruder(cmap)
        cmap.move_agent(0, 1)
        intr.observe(cmap)
        assert intr.region == {2}
        cmap.move_agent(1, 2)
        intr.observe(cmap)
        assert intr.captured
        assert not intr.ever_escaped_into_clean_area

    def test_detects_escape_into_clean(self):
        g = star_graph(3)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        intr = ReachableSetIntruder(cmap)
        cmap.move_agent(0, 1)  # centre recontaminated from other leaves
        intr.observe(cmap)
        assert intr.ever_escaped_into_clean_area


class TestWalker:
    def test_needs_contamination(self):
        g = path_graph(1)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        with pytest.raises(SimulationError):
            WalkerIntruder(cmap)

    def test_default_start_far_from_homebase(self):
        cmap = ContaminationMap(Hypercube(4), strict=False)
        cmap.place_agent(0)
        walker = WalkerIntruder(cmap)
        assert walker.position == 0b1111  # the antipode

    def test_start_must_be_contaminated(self):
        cmap = ContaminationMap(Hypercube(2), strict=False)
        cmap.place_agent(0)
        with pytest.raises(SimulationError):
            WalkerIntruder(cmap, start=0)

    def test_captured_when_stepped_on(self):
        g = path_graph(3)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        walker = WalkerIntruder(cmap, start=1, rng=random.Random(0))
        cmap.move_agent(0, 1)
        cmap.move_agent(1, 2)
        walker.observe(cmap)
        assert walker.captured

    def test_flees_along_path(self):
        g = path_graph(5)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        walker = WalkerIntruder(cmap, start=1, rng=random.Random(0))
        walker.observe(cmap)
        # with a guard at 0 the farthest contaminated node is 4
        assert walker.position == 4

    def test_cornered_in_clean_region_is_captured(self):
        g = path_graph(3)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        cmap.place_agent(0)
        walker = WalkerIntruder(cmap, start=2, rng=random.Random(1))
        cmap.move_agent(0, 1)
        walker.observe(cmap)
        cmap.move_agent(1, 2)
        walker.observe(cmap)
        assert walker.captured

    def test_trajectory_is_recorded(self):
        cmap = ContaminationMap(Hypercube(3), strict=False)
        cmap.place_agent(0)
        walker = WalkerIntruder(cmap, start=1, rng=random.Random(0))
        walker.observe(cmap)
        assert walker.trajectory[0] == 1
        assert len(walker.trajectory) >= 1

    def test_observation_after_capture_is_noop(self):
        g = path_graph(2)
        cmap = ContaminationMap(g, strict=False)
        cmap.place_agent(0)
        walker = WalkerIntruder(cmap, start=1)
        cmap.move_agent(0, 1)
        walker.observe(cmap)
        assert walker.captured
        walker.observe(cmap)  # still captured, no crash
        assert walker.captured

    def test_walker_never_enters_guarded_node(self):
        """Run a full visibility sweep; the walker's trajectory must avoid
        every node while it is guarded."""
        from repro import get_strategy

        cmap = ContaminationMap(Hypercube(3), strict=False)
        team = 4
        for _ in range(team):
            cmap.place_agent(0)
        walker = WalkerIntruder(cmap, rng=random.Random(3))
        schedule = get_strategy("visibility").run(3)
        for move in schedule.moves:
            cmap.move_agent(move.src, move.dst)
            was = walker.position
            walker.observe(cmap)
            if not walker.captured:
                assert cmap.guards(walker.position) == 0, (was, walker.position)
        assert walker.captured
