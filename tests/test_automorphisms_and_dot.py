"""Tests for dimension permutations and the DOT exporter."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy
from repro.errors import ScheduleError
from repro.viz.dot_export import broadcast_tree_dot, cleaning_order_dot


class TestPermutation:
    @pytest.mark.parametrize("perm", list(itertools.permutations(range(3))))
    def test_every_permutation_of_h3_verifies(self, perm):
        for name in ("clean", "visibility", "cloning"):
            schedule = get_strategy(name).run(3).permuted(list(perm))
            report = verify_schedule(schedule)
            assert report.ok, (name, perm, report.summary())

    def test_identity_is_noop(self):
        base = get_strategy("visibility").run(4)
        same = base.permuted([0, 1, 2, 3])
        assert same.moves == base.moves

    def test_counts_invariant(self):
        base = get_strategy("clean").run(4)
        perm = base.permuted([3, 2, 1, 0])
        assert perm.total_moves == base.total_moves
        assert perm.team_size == base.team_size
        assert perm.makespan == base.makespan
        assert perm.homebase == 0  # permutations fix the homebase

    def test_rejects_non_permutation(self):
        schedule = get_strategy("visibility").run(3)
        with pytest.raises(ScheduleError):
            schedule.permuted([0, 0, 1])
        with pytest.raises(ScheduleError):
            schedule.permuted([0, 1])

    @settings(max_examples=15, deadline=None)
    @given(st.permutations(list(range(4))), st.integers(min_value=0, max_value=15))
    def test_composition_with_translation(self, perm, homebase):
        """Permutation then translation realizes an arbitrary automorphism
        image of the deployment; the result always verifies."""
        schedule = get_strategy("visibility").run(4).permuted(list(perm)).translated(homebase)
        report = verify_schedule(schedule)
        assert report.ok
        assert report.first_visit_order[0] == homebase

    def test_metadata_records_permutation(self):
        schedule = get_strategy("visibility").run(3).permuted([1, 2, 0])
        assert schedule.metadata["permuted_by"] == [1, 2, 0]


class TestDotExport:
    def test_tree_dot_structure(self):
        dot = broadcast_tree_dot(3)
        assert dot.startswith('graph "T(3)"')
        assert dot.count(" -- ") == 7  # n - 1 tree edges
        assert "T(0)" in dot and "T(3)" in dot

    def test_non_tree_edges_dotted(self):
        dot = broadcast_tree_dot(3, include_non_tree_edges=True)
        # H_3 has 12 edges, 7 in the tree, 5 dotted
        assert dot.count("style=dotted") == 5

    def test_order_dot_ranks(self):
        schedule = get_strategy("clean").run(3)
        dot = cleaning_order_dot(schedule)
        assert 'label="1\\n' in dot  # the homebase is rank 1
        assert 'label="8\\n' in dot  # the last node is rank 8
        assert dot.count("fillcolor") == 8

    def test_order_dot_shades_monotone_with_time(self):
        schedule = get_strategy("visibility").run(3)
        dot = cleaning_order_dot(schedule)
        import re

        shades = [int(m) for m in re.findall(r"gray(\d+)", dot)]
        assert max(shades) <= 90 and min(shades) >= 30

    def test_size_guard(self):
        schedule = get_strategy("visibility").run(4)
        with pytest.raises(ValueError):
            cleaning_order_dot(schedule, max_nodes=4)

    def test_dot_is_parseable_by_networkx(self):
        """The emitted DOT at least round-trips through pydot-less parsing:
        check bracket balance and statement termination."""
        dot = broadcast_tree_dot(4, include_non_tree_edges=True)
        assert dot.count("{") == dot.count("}") == 1
        body = dot[dot.index("{") + 1 : dot.rindex("}")]
        statements = [s.strip() for s in body.splitlines() if s.strip()]
        assert all(s.endswith(";") for s in statements)
