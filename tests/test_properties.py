"""Tests for the paper's Properties 1-8 and Lemma 1 (Sections 3.1, 4.1)."""

import pytest

from repro.errors import TopologyError
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube
from repro.topology.properties import (
    PROPERTY_8_EXCEPTIONS,
    check_all_properties,
    lemma_1,
    property_1,
    property_2,
    property_5,
    property_6,
    property_7,
    property_8,
)

DIMENSIONS = list(range(0, 9))


@pytest.mark.parametrize("d", DIMENSIONS)
def test_all_properties_hold(d):
    check_all_properties(d)


class TestProperty1:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_census_structure(self, d):
        censuses = property_1(BroadcastTree(d))
        assert censuses[0] == {d: 1}  # the unique root T(d)
        # level 1 holds one node of each type T(0) .. T(d-1)
        assert censuses[1] == {k: 1 for k in range(d)}

    def test_total_per_level_is_binomial(self):
        import math

        d = 7
        censuses = property_1(BroadcastTree(d))
        for level, census in censuses.items():
            assert sum(census.values()) == math.comb(d, level)


class TestProperty2:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_leaf_total_is_half(self, d):
        leaves = property_2(BroadcastTree(d))
        assert sum(leaves.values()) == 2 ** (d - 1)

    def test_level_zero_has_no_leaf_for_positive_d(self):
        assert property_2(BroadcastTree(3))[0] == 0


class TestProperty5:
    @pytest.mark.parametrize("d", range(0, 9))
    def test_sizes(self, d):
        sizes = property_5(Hypercube(d))
        assert sizes[0] == 1
        for i in range(1, d + 1):
            assert sizes[i] == 2 ** (i - 1)

    def test_sizes_sum_to_n(self):
        assert sum(property_5(Hypercube(7))) == 128


class TestProperty6:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_leaves_equal_cd(self, d):
        tree = BroadcastTree(d)
        assert property_6(tree) == Hypercube(d).class_members(d)


class TestProperty7:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_holds(self, d):
        property_7(Hypercube(d))

    def test_exactly_one_lower_class_neighbor(self):
        h = Hypercube(5)
        for x in range(1, h.n):
            i = h.class_index(x)
            lower = [y for y in h.smaller_neighbors(x) if h.class_index(y) < i]
            assert len(lower) == 1
            # ... and that neighbour is x with its msb cleared
            assert lower[0] == x ^ (1 << (i - 1))


class TestProperty8:
    @pytest.mark.parametrize("d", range(2, 9))
    def test_witnesses_valid(self, d):
        h = Hypercube(d)
        witnesses = property_8(h)
        for x, (y, z) in witnesses.items():
            i = h.class_index(x)
            assert y in h.smaller_neighbors(x)
            assert h.class_index(y) == i
            assert z in h.smaller_neighbors(y)
            assert h.class_index(z) == i - 1

    @pytest.mark.parametrize("d", range(2, 9))
    def test_node_three_is_the_only_exception(self, d):
        """Documented paper erratum: node 3 (bits {1,2}) has no witness
        chain, and it is the only such node."""
        h = Hypercube(d)
        witnesses = property_8(h)
        eligible = {x for x in h.nodes() if h.class_index(x) > 1}
        missing = eligible - set(witnesses)
        assert missing == PROPERTY_8_EXCEPTIONS

    def test_node_three_really_has_no_witness(self):
        h = Hypercube(4)
        x = 3
        for y in h.smaller_neighbors(x):
            if h.class_index(y) != h.class_index(x):
                continue
            assert all(
                h.class_index(z) != h.class_index(x) - 1
                for z in h.smaller_neighbors(y)
            )


class TestLemma1:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_holds_in_integer_order(self, d):
        lemma_1(BroadcastTree(d))

    def test_statement_explicitly(self):
        """z in N(y) - NT(y) at level l+1 implies tree-parent(z) < y."""
        d = 6
        h = Hypercube(d)
        tree = BroadcastTree(h)
        checked = 0
        for y in h.nodes():
            children = set(tree.children(y))
            for z in h.neighbors(y):
                if h.level(z) == h.level(y) + 1 and z not in children:
                    assert tree.parent(z) < y
                    checked += 1
        assert checked > 0

    def test_string_lex_order_would_fail(self):
        """Reading strings position-1-first (LSB first) breaks Lemma 1 —
        evidence that the paper's lexicographic order is MSB-first, i.e.
        integer order."""
        d = 4
        h = Hypercube(d)
        tree = BroadcastTree(h)
        violations = 0
        for y in h.nodes():
            children = set(tree.children(y))
            for z in h.neighbors(y):
                if h.level(z) == h.level(y) + 1 and z not in children:
                    x = tree.parent(z)
                    if not h.bitstring(x) < h.bitstring(y):  # LSB-first strings
                        violations += 1
        assert violations > 0
