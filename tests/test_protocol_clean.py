"""Tests for the Algorithm 1 whiteboard protocol on the async engine."""

from collections import Counter

import pytest

from repro.analysis import formulas
from repro.core.clean import CleanStrategy
from repro.core.states import AgentRole
from repro.protocols.clean_protocol import run_clean_protocol
from repro.sim.scheduling import AdversarialSlowestDelay, RandomDelay

DIMS = list(range(0, 5))


class TestUnitDelays:
    @pytest.mark.parametrize("d", DIMS)
    def test_correct(self, d):
        result = run_clean_protocol(d)
        assert result.ok, result.summary()
        assert result.team_size == formulas.clean_peak_agents(d)

    @pytest.mark.parametrize("d", range(1, 5))
    def test_follower_moves_match_schedule_plane(self, d):
        """The follower (non-synchronizer) move multiset equals the schedule
        plane's plain-agent moves exactly."""
        result = run_clean_protocol(d)
        plane = Counter(
            (m.src, m.dst)
            for m in CleanStrategy().run(d).moves
            if m.role is AgentRole.AGENT
        )
        measured = Counter(
            (e.data["src"], e.node) for e in result.trace.moves() if e.agent != 0
        )
        assert measured == plane

    def test_follower_move_total_is_theorem_3(self):
        d = 4
        result = run_clean_protocol(d)
        follower_moves = sum(
            1 for e in result.trace.moves() if e.agent != 0
        )
        assert follower_moves == formulas.clean_agent_moves_exact(d)

    def test_everyone_parks_or_terminates(self):
        result = run_clean_protocol(3)
        # synchronizer + all followers terminate after 'done'
        assert result.terminated_agents == result.team_size
        assert result.blocked_agents == 0


class TestAsynchrony:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_delays(self, seed):
        result = run_clean_protocol(4, delay=RandomDelay(seed=seed))
        assert result.ok, result.summary()

    def test_slow_synchronizer(self):
        result = run_clean_protocol(
            3, delay=AdversarialSlowestDelay(slow_agents=[0], factor=20)
        )
        assert result.ok

    def test_slow_followers(self):
        result = run_clean_protocol(
            3, delay=AdversarialSlowestDelay(slow_agents=[1, 2], factor=20)
        )
        assert result.ok

    @pytest.mark.parametrize("seed", range(2))
    def test_walker_intruder_caught(self, seed):
        result = run_clean_protocol(3, delay=RandomDelay(seed=seed), intruder="walker")
        assert result.ok
        assert result.intruder_captured


class TestResourceDiscipline:
    def test_whiteboards_stay_logarithmic(self):
        """O(log n) whiteboard content: a fixed key-name overhead plus a
        few counters of <= log n bits each."""
        peaks = {}
        for d in (3, 4, 5):
            budget = 280 + 8 * d  # fixed key overhead + c * log n
            result = run_clean_protocol(d, whiteboard_capacity_bits=budget)
            assert result.ok
            peaks[d] = result.peak_whiteboard_bits
            assert result.peak_whiteboard_bits <= budget
        # doubling n adds only O(1) bits (counter width), not O(n)
        assert peaks[5] - peaks[3] <= 16

    def test_insufficient_team_deadlocks_cleanly(self):
        """With fewer agents than Theorem 2 requires, the run stalls and the
        engine reports a deadlock instead of hanging or recontaminating."""
        d = 3
        needed = formulas.clean_peak_agents(d)
        result = run_clean_protocol(d, team_size=needed - 1)
        assert result.deadlocked
        assert not result.all_clean
        assert result.monotone  # it stalls safely, never recontaminates

    def test_extra_agents_are_harmless(self):
        d = 3
        result = run_clean_protocol(d, team_size=formulas.clean_peak_agents(d) + 3)
        assert result.ok
