"""Unit tests for the discrete-event engine (capabilities, waits, deadlock)."""

import pytest

from repro.errors import AgentError, SimulationError
from repro.sim.agent import (
    CloneSelf,
    Move,
    ReadWhiteboard,
    See,
    Terminate,
    UpdateWhiteboard,
    WaitUntil,
    WriteWhiteboard,
)
from repro.sim.engine import Engine
from repro.sim.scheduling import RandomDelay, UnitDelay
from repro.topology.generic import path_graph
from repro.topology.hypercube import Hypercube


def test_single_walker_cleans_path():
    def walker(ctx):
        for dst in (1, 2, 3):
            yield Move(dst)
        yield Terminate()

    result = Engine(path_graph(4), [walker]).run()
    assert result.ok
    assert result.total_moves == 3
    assert result.makespan == 3.0
    assert result.terminated_agents == 1


def test_generator_exhaustion_counts_as_terminate():
    def walker(ctx):
        yield Move(1)
        # falls off the end

    result = Engine(path_graph(2), [walker]).run()
    assert result.ok
    assert result.terminated_agents == 1


def test_whiteboard_round_trip():
    seen = {}

    def writer(ctx):
        yield WriteWhiteboard("token", 42)
        value = yield ReadWhiteboard("token")
        seen["value"] = value
        count = yield UpdateWhiteboard(lambda wb: wb.get("token", 0) + 1)
        seen["count"] = count
        yield Move(1)

    result = Engine(path_graph(2), [writer]).run()
    assert result.ok
    assert seen == {"value": 42, "count": 43}


def test_wait_until_wakes_on_state_change():
    order = []

    def early(ctx):
        yield WaitUntil(lambda view: view.wb("go") is True)
        order.append("early")
        yield Move(1)

    def late(ctx):
        yield WriteWhiteboard("go", True)
        order.append("late")
        yield Terminate()

    result = Engine(path_graph(2), [early, late]).run()
    assert result.ok
    assert order == ["late", "early"]


def test_invalid_move_rejected():
    def bad(ctx):
        yield Move(3)  # not adjacent to 0 on a path

    with pytest.raises(AgentError):
        Engine(path_graph(4), [bad]).run()


def test_see_requires_visibility():
    def peeker(ctx):
        yield See()

    with pytest.raises(AgentError):
        Engine(path_graph(2), [peeker], visibility=False).run()


def test_see_returns_states():
    from repro.core.states import NodeState

    seen = {}

    def peeker(ctx):
        states = yield See()
        seen.update(states)
        yield Move(1)

    result = Engine(path_graph(2), [peeker], visibility=True).run()
    assert result.ok
    assert seen == {1: NodeState.CONTAMINATED}


def test_neighbor_states_in_predicate_requires_visibility():
    def waiter(ctx):
        yield WaitUntil(lambda view: bool(view.neighbor_states()))

    with pytest.raises(AgentError):
        Engine(path_graph(2), [waiter], visibility=False).run()


def test_clock_requires_global_clock():
    def timed(ctx):
        yield WaitUntil(lambda view: view.time >= 1.0)

    with pytest.raises(AgentError):
        Engine(path_graph(2), [timed], global_clock=False).run()


def test_clock_with_wake_at():
    times = []

    def timed(ctx):
        yield WaitUntil(lambda view: view.time >= 2.5, wake_at=2.5)
        times.append("woke")
        yield Move(1)

    result = Engine(path_graph(2), [timed], global_clock=True).run()
    assert result.ok
    assert times == ["woke"]
    assert result.makespan == pytest.approx(3.5)


def test_clone_requires_capability():
    def parent(ctx):
        yield CloneSelf(lambda c: iter(()))

    with pytest.raises(AgentError):
        Engine(path_graph(2), [parent], cloning=False).run()


def test_clone_spawns_working_agent():
    def child_behavior(ctx):
        yield Move(1)

    def parent(ctx):
        child_id = yield CloneSelf(child_behavior)
        assert child_id == 1
        yield Terminate()

    result = Engine(path_graph(2), [parent], cloning=True).run()
    assert result.team_size == 2
    assert result.total_moves == 1
    assert result.ok


def test_deadlock_detected():
    def stuck(ctx):
        yield WaitUntil(lambda view: False)

    result = Engine(path_graph(2), [stuck]).run()
    assert result.deadlocked
    assert not result.ok
    assert result.blocked_agents == 1


def test_guarding_forever_is_not_deadlock():
    """A blocked agent with the network clean is a guard, not a deadlock."""

    def sweep(ctx):
        yield Move(1)
        yield WaitUntil(lambda view: False)  # guard node 1 forever

    result = Engine(path_graph(2), [sweep]).run()
    assert result.all_clean
    assert not result.deadlocked
    assert result.ok


def test_max_events_guard():
    def spinner(ctx):
        while True:
            yield UpdateWhiteboard(lambda wb: None)

    with pytest.raises(SimulationError):
        Engine(path_graph(2), [spinner], max_events=100).run()


def test_needs_behaviors():
    with pytest.raises(SimulationError):
        Engine(path_graph(2), [])


def test_unknown_action_rejected():
    def weird(ctx):
        yield "not an action"

    with pytest.raises(AgentError):
        Engine(path_graph(2), [weird]).run()


def test_unknown_intruder_kind():
    with pytest.raises(SimulationError):
        Engine(path_graph(2), [lambda ctx: iter(())], intruder="ghost")


def test_walker_intruder_integration():
    def walker(ctx):
        yield Move(1)
        yield Move(2)

    result = Engine(path_graph(3), [walker], intruder="walker").run()
    assert result.ok
    assert result.intruder_captured


def test_no_intruder():
    def walker(ctx):
        yield Move(1)

    result = Engine(path_graph(2), [walker], intruder=None).run()
    assert result.ok  # capture defaults to all_clean


def test_random_delays_stretch_makespan():
    def walker(ctx):
        for dst in (1, 2, 3):
            yield Move(dst)

    unit = Engine(path_graph(4), [walker], delay=UnitDelay()).run()
    slow = Engine(path_graph(4), [walker], delay=RandomDelay(seed=0, low=2.0, high=4.0)).run()
    assert slow.makespan > unit.makespan
    assert slow.total_moves == unit.total_moves


def test_local_delay_charged():
    def chatty(ctx):
        yield WriteWhiteboard("a", 1)
        yield Move(1)

    result = Engine(
        path_graph(2), [chatty], delay=RandomDelay(seed=1, low=1.0, high=1.0, local_jitter=0.0)
    ).run()
    assert result.ok
    assert result.makespan == pytest.approx(1.0)


def test_monotonicity_violation_reported_not_raised():
    """An agent abandoning the frontier is reported via result flags."""

    def bad(ctx):
        yield Move(1)
        yield Move(0)  # vacates 1 next to contaminated 2; recontamination
        yield Move(1)
        yield Move(2)

    result = Engine(path_graph(3), [bad]).run()
    assert result.all_clean
    assert not result.monotone
    assert not result.ok


def test_peak_whiteboard_bits_recorded():
    def writer(ctx):
        yield WriteWhiteboard("counter", 2**16)
        yield Move(1)

    result = Engine(path_graph(2), [writer]).run()
    assert result.peak_whiteboard_bits > 0


def test_agent_memory_bits_recorded():
    def rememberer(ctx):
        ctx.remember("state", 12345)
        yield Move(1)

    result = Engine(path_graph(2), [rememberer]).run()
    assert result.peak_agent_memory_bits > 0


def test_board_accessor_and_time():
    h = Hypercube(2)

    def noop(ctx):
        yield Move(1)

    engine = Engine(h, [noop])
    board = engine.board(3)
    assert board.degree == 2
    engine.run()
    assert engine.time == 1.0
