"""Unit tests for the generic graph adapters."""

import pytest

from repro.errors import InvalidNodeError, TopologyError
from repro.topology.generic import (
    GraphAdapter,
    complete_graph,
    from_networkx,
    grid_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)


class TestGraphAdapter:
    def test_basic(self):
        g = GraphAdapter(3, [(0, 1), (1, 2)], name="P3")
        assert g.n == 3
        assert g.neighbors(1) == [0, 2]
        assert g.degree(0) == 1
        assert g.has_edge(0, 1) and not g.has_edge(0, 2)
        assert g.edges() == [(0, 1), (1, 2)]

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            GraphAdapter(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(TopologyError):
            GraphAdapter(2, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidNodeError):
            GraphAdapter(2, [(0, 5)])

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            GraphAdapter(0, [])

    def test_neighbors_bad_node(self):
        g = path_graph(3)
        with pytest.raises(InvalidNodeError):
            g.neighbors(3)

    def test_equality_hash(self):
        assert path_graph(4) == path_graph(4)
        assert path_graph(4) != ring_graph(4)
        assert hash(path_graph(4)) == hash(path_graph(4))

    def test_connectivity(self):
        assert path_graph(5).is_connected()
        disconnected = GraphAdapter(4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()

    def test_is_tree(self):
        assert path_graph(5).is_tree()
        assert star_graph(4).is_tree()
        assert not ring_graph(4).is_tree()


class TestConstructors:
    def test_hypercube_graph_matches_hypercube(self):
        from repro.topology.hypercube import Hypercube

        g = hypercube_graph(4)
        h = Hypercube(4)
        assert g.n == h.n
        for x in h.nodes():
            assert g.neighbors(x) == sorted(h.neighbors(x))

    def test_ring(self):
        g = ring_graph(5)
        assert all(g.degree(v) == 2 for v in g.nodes())
        with pytest.raises(TopologyError):
            ring_graph(2)

    def test_path_endpoints(self):
        g = path_graph(6)
        assert g.degree(0) == g.degree(5) == 1

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))
        with pytest.raises(TopologyError):
            star_graph(0)

    def test_tree_graph(self):
        g = tree_graph([0, 0, 1, 1])
        assert g.is_tree()
        assert g.neighbors(0) == [1, 2]
        with pytest.raises(TopologyError):
            tree_graph([1])  # parent must be a smaller id

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.degree(0) == 2  # corner
        assert g.degree(5) == 4  # interior
        with pytest.raises(TopologyError):
            grid_graph(0, 3)

    def test_complete(self):
        g = complete_graph(5)
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert len(g.edges()) == 10

    def test_from_networkx(self):
        import networkx as nx

        g = from_networkx(nx.cycle_graph(6))
        assert g == ring_graph(6)

    def test_to_networkx_round_trip(self):
        g = grid_graph(2, 3)
        back = from_networkx(g.to_networkx())
        assert back == g
