"""Tests for the ``repro-lint`` model-compliance static analyzer.

One fixture protocol per rule code under ``tests/fixtures/lint/``, each
deliberately violating exactly one rule; a clean fixture proving the
analyzer stays silent on well-formed protocols; the self-check over the
repo's own five protocol implementations; and the reporter/CLI contract
(file:line anchors, JSON schema, exit codes).
"""

import json
from pathlib import Path

import pytest

from repro.lint import RULES, analyze_path, analyze_paths, analyze_source
from repro.lint.analyzer import helper_requirements, protocols_dir
from repro.lint.cli import main as lint_main
from repro.lint.reporters import json_payload, render_rules, render_text

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: fixture file -> (expected code, expected line, expected symbol)
VIOLATIONS = {
    "viol_rpr010.py": ("RPR010", 3, ""),
    "viol_rpr100.py": ("RPR100", 6, ""),
    "viol_rpr101.py": ("RPR101", 11, "peeking_agent"),
    "viol_rpr102.py": ("RPR102", 12, "budding_agent"),
    "viol_rpr103.py": ("RPR103", 13, "punctual_agent"),
    "viol_rpr104.py": ("RPR104", 6, ""),
    "viol_rpr110.py": ("RPR110", 12, "scribbling_agent"),
    "viol_rpr120.py": ("RPR120", 11, "chatty_agent"),
    "viol_rpr130.py": ("RPR130", 11, "hoarding_agent"),
    "obs/viol_rpr200.py": ("RPR200", 3, ""),
    "exec/viol_rpr210.py": ("RPR210", 3, ""),
    "fastpath/viol_rpr220.py": ("RPR220", 3, ""),
    "obs/trace.py": ("RPR230", 3, ""),
    "viol_rpr240.py": ("RPR240", 10, "__init__"),
    "viol_rpr250.py": ("RPR250", 3, ""),
    "determinism/viol_rpr300.py": ("RPR300", 13, "JitteryStrategy.generate"),
    "determinism/viol_rpr310.py": ("RPR310", 12, "StampedStrategy.generate"),
    "determinism/viol_rpr320.py": ("RPR320", 12, "TunedStrategy.generate"),
    "determinism/viol_rpr330.py": ("RPR330", 11, "UnorderedStrategy.generate"),
    "exec/viol_rpr340.py": ("RPR340", 8, "publish_results"),
    "fastpath/viol_rpr350.py": ("RPR350", 9, "publish_blob"),
    "fastpath/compiled.py": ("RPR360", 11, "compiled_schedule"),
}

#: rules that need more than one source file to fire; their catch/pass
#: coverage lives in tests/test_lint_infra.py (baseline round-trips)
NON_FILE_RULES = {"RPR011"}


class TestRegistry:
    def test_every_code_has_a_fixture(self):
        covered = {code for code, _, _ in VIOLATIONS.values()} | NON_FILE_RULES
        assert covered == set(RULES), "each shipped rule needs a violating fixture"

    def test_codes_are_stable(self):
        for code, r in RULES.items():
            assert code == r.code
            # RPR0xx: lint infrastructure; RPR1xx: model-compliance;
            # RPR2xx: layering/import hygiene; RPR3xx: determinism +
            # concurrency safety
            assert code.startswith(("RPR0", "RPR1", "RPR2", "RPR3")) and len(code) == 6

    def test_rules_listing_mentions_every_code(self):
        listing = render_rules()
        for code in RULES:
            assert code in listing

    def test_docs_document_every_code(self):
        docs = (Path(__file__).parent.parent / "docs" / "LINTING.md").read_text()
        for code in RULES:
            assert code in docs, f"{code} missing from docs/LINTING.md"


class TestViolatingFixtures:
    @pytest.mark.parametrize("fixture", sorted(VIOLATIONS))
    def test_exact_code_line_and_symbol(self, fixture):
        code, line, symbol = VIOLATIONS[fixture]
        findings = analyze_path(FIXTURES / fixture)
        assert [f.code for f in findings] == [code], findings
        found = findings[0]
        assert found.line == line
        assert found.column >= 1
        assert found.symbol == symbol
        assert found.path.endswith(fixture)

    @pytest.mark.parametrize("fixture", sorted(VIOLATIONS))
    def test_anchor_format(self, fixture):
        found = analyze_path(FIXTURES / fixture)[0]
        path, line, col = found.anchor().rsplit(":", 2)
        assert path.endswith(fixture)
        assert int(line) == found.line and int(col) == found.column


class TestCleanFixture:
    def test_no_findings(self):
        assert analyze_path(FIXTURES / "clean_fixture.py") == []

    def test_npkernels_is_the_sanctioned_numpy_home(self):
        """The RPR250 pass fixture: ``fastpath/npkernels.py`` may import
        numpy — the confinement rule exempts exactly that path."""
        assert analyze_path(FIXTURES / "fastpath" / "npkernels.py") == []

    def test_directory_scan_finds_all_and_only_violations(self):
        findings = analyze_paths([FIXTURES])
        by_file = {Path(f.path).name for f in findings}
        assert by_file == {Path(k).name for k in VIOLATIONS}
        assert len(findings) == len(VIOLATIONS)


class TestInference:
    def test_helper_requirements_from_base_ast(self):
        reqs = helper_requirements()
        assert reqs["smaller_all_safe"] == frozenset({"visibility"})
        assert reqs["increment"] == frozenset()
        assert reqs["take_slot"] == frozenset()

    def test_helper_call_propagates_visibility(self):
        source = (
            "from repro.protocols.base import ProtocolModel, smaller_all_safe\n"
            "from repro.sim.agent import Move, WaitUntil\n"
            "MODEL = ProtocolModel()\n"
            "def agent(ctx):\n"
            "    yield WaitUntil(smaller_all_safe(ctx.dimension, ctx.node))\n"
            "    yield Move(ctx.node ^ 1)\n"
        )
        findings = analyze_source(source, "helper_user.py")
        assert [f.code for f in findings] == ["RPR101"]
        assert "smaller_all_safe" in findings[0].message

    def test_module_attribute_helper_call(self):
        source = (
            "from repro.protocols import base\n"
            "MODEL = base.ProtocolModel()\n"
            "def agent(ctx):\n"
            "    yield base.smaller_all_safe(ctx.dimension, ctx.node)\n"
        )
        # resolved through the module alias, same requirement
        assert [f.code for f in analyze_source(source)] == ["RPR101"]

    def test_predicate_neighbor_states_needs_visibility(self):
        source = (
            "MODEL = ProtocolModel()\n"
            "def agent(ctx):\n"
            "    def ready(view):\n"
            "        return bool(view.neighbor_states())\n"
            "    yield WaitUntil(ready)\n"
        )
        assert [f.code for f in analyze_source(source)] == ["RPR101"]

    def test_helper_module_without_behaviours_needs_no_model(self):
        source = (
            "def increment(key):\n"
            "    def mutate(wb):\n"
            "        wb[key] = wb.get(key, 0) + 1\n"
            "        return wb[key]\n"
            "    return mutate\n"
        )
        assert analyze_source(source) == []

    def test_declared_and_used_is_clean(self):
        source = (
            "MODEL = ProtocolModel(visibility=True, cloning=True)\n"
            "def agent(ctx):\n"
            "    states = yield See()\n"
            "    yield CloneSelf(agent)\n"
            "    yield Terminate()\n"
        )
        assert analyze_source(source) == []


class TestSelfCheck:
    def test_own_protocols_are_clean(self):
        assert analyze_paths([protocols_dir()]) == []

    def test_cli_self_strict_exits_zero(self, capsys):
        assert lint_main(["--self", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_every_shipped_protocol_declares_a_model(self):
        import repro.protocols as protocols
        from repro.protocols.base import ProtocolModel

        for name in (
            "clean_protocol",
            "visibility_protocol",
            "cloning_protocol",
            "sync_protocol",
            "frontier_protocol",
        ):
            module = __import__(f"repro.protocols.{name}", fromlist=["MODEL"])
            assert isinstance(module.MODEL, ProtocolModel), name
        assert protocols.ProtocolModel is ProtocolModel

    def test_declarations_match_engine_flags(self):
        from repro.protocols import cloning_protocol, sync_protocol, visibility_protocol

        assert visibility_protocol.MODEL.capabilities() == {"visibility"}
        assert cloning_protocol.MODEL.capabilities() == {"visibility", "cloning"}
        assert sync_protocol.MODEL.capabilities() == {"global_clock"}


class TestReporters:
    def test_text_report_has_anchors_and_summary(self):
        findings = analyze_path(FIXTURES / "viol_rpr101.py")
        text = render_text(findings, files_scanned=1)
        assert "viol_rpr101.py:11:" in text
        assert "RPR101" in text and "undeclared-visibility" in text
        assert "1 finding(s) in 1 file" in text

    def test_text_report_clean(self):
        assert "clean: no findings" in render_text([], files_scanned=3)

    def test_json_schema(self):
        findings = analyze_paths([FIXTURES])
        payload = json_payload(findings, files_scanned=9)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 9
        assert payload["summary"]["total"] == len(VIOLATIONS)
        assert payload["summary"]["by_code"] == {
            code: 1 for code, _, _ in VIOLATIONS.values()
        }
        for entry in payload["findings"]:
            assert set(entry) == {
                "code", "rule", "path", "line", "column", "symbol", "message",
            }
            assert isinstance(entry["line"], int) and entry["line"] >= 1
            assert isinstance(entry["column"], int) and entry["column"] >= 1
            assert entry["code"] in RULES
            assert entry["rule"] == RULES[entry["code"]].name
        # round-trips through real JSON
        assert json.loads(json.dumps(payload)) == payload


class TestCli:
    def test_strict_fails_on_violations(self, capsys):
        assert lint_main(["--strict", str(FIXTURES / "viol_rpr102.py")]) == 1
        assert "RPR102" in capsys.readouterr().out

    def test_violations_exit_one_without_strict(self, capsys):
        # exit semantics: findings always fail (1); --strict is a no-op
        assert lint_main([str(FIXTURES / "viol_rpr102.py")]) == 1
        assert "RPR102" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert lint_main(["--format", "json", str(FIXTURES / "viol_rpr120.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_code"] == {"RPR120": 1}

    def test_sarif_format(self, capsys):
        assert lint_main(["--format", "sarif", str(FIXTURES / "viol_rpr120.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert [r["ruleId"] for r in run["results"]] == ["RPR120"]

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        assert "RPR130" in capsys.readouterr().out

    def test_no_paths_is_an_error(self, capsys):
        assert lint_main([]) == 2

    def test_missing_path_is_an_error(self, capsys):
        assert lint_main(["no/such/file.py"]) == 2

    def test_unparseable_input_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert lint_main([str(bad)]) == 2

    def test_repro_search_lint_subcommand(self, capsys):
        from repro.cli import main as search_main

        assert search_main(["lint", "--self", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_repro_search_lint_violation(self, capsys):
        from repro.cli import main as search_main

        path = str(FIXTURES / "viol_rpr130.py")
        assert search_main(["lint", "--strict", path]) == 1
        assert "RPR130" in capsys.readouterr().out

class TestObsLayering:
    """RPR200: the observability layer must not import the simulation layer."""

    def test_absolute_imports_flagged(self):
        source = (
            "import repro.sim.engine\n"
            "from repro.protocols import base\n"
        )
        findings = analyze_source(source, "src/repro/obs/bad.py")
        assert [f.code for f in findings] == ["RPR200", "RPR200"]
        assert [f.line for f in findings] == [1, 2]

    def test_relative_escape_flagged(self):
        source = "from ..sim import trace\n"
        findings = analyze_source(source, "src/repro/obs/bad.py")
        assert [f.code for f in findings] == ["RPR200"]

    def test_prefix_is_a_package_boundary(self):
        # `repro.simulator` is not `repro.sim`
        source = "import repro.simulator\n"
        assert analyze_source(source, "src/repro/obs/ok.py") == []

    def test_rule_only_applies_inside_obs(self):
        source = "from repro.sim.engine import Engine\n"
        assert analyze_source(source, "src/repro/viz/fine.py") == []

    def test_shipped_obs_package_is_clean(self):
        from repro.lint.analyzer import obs_dir

        assert analyze_paths([obs_dir()]) == []

    def test_self_check_covers_obs(self, tmp_path, capsys):
        assert lint_main(["--self", "--strict"]) == 0
        out = capsys.readouterr().out
        # self scan now includes the obs package's files
        assert "clean" in out


class TestExecLayering:
    """RPR210: the executor layer must not import the CLI/rendering layers."""

    def test_absolute_imports_flagged(self):
        source = (
            "import repro.cli\n"
            "from repro.viz import plots\n"
        )
        findings = analyze_source(source, "src/repro/exec/bad.py")
        assert [f.code for f in findings] == ["RPR210", "RPR210"]
        assert [f.line for f in findings] == [1, 2]

    def test_relative_escape_flagged(self):
        source = "from ..cli import main\n"
        findings = analyze_source(source, "src/repro/exec/bad.py")
        assert [f.code for f in findings] == ["RPR210"]

    def test_prefix_is_a_package_boundary(self):
        # `repro.climate` is not `repro.cli`
        source = "import repro.climate\n"
        assert analyze_source(source, "src/repro/exec/ok.py") == []

    def test_rule_only_applies_inside_exec(self):
        # the CLI importing itself is obviously fine
        source = "from repro.cli import main\n"
        assert analyze_source(source, "src/repro/analysis/fine.py") == []

    def test_exec_may_import_sim_and_analysis(self):
        source = (
            "from repro.analysis.sweeps import run_sweep\n"
            "from repro.sim.engine import Engine\n"
        )
        assert analyze_source(source, "src/repro/exec/tasks.py") == []

    def test_shipped_exec_package_is_clean(self):
        from repro.lint.analyzer import exec_dir

        assert analyze_paths([exec_dir()]) == []


class TestFastpathLayering:
    """RPR220: the fastpath plane imports only core/topology/errors.

    The batch Monte Carlo engine (``batchsim.py``) is the module most
    tempted to cheat — its semantics mirror ``repro.sim.engine`` — so
    its coverage is pinned explicitly.
    """

    def test_shipped_batchsim_is_clean(self):
        from repro.lint.analyzer import fastpath_dir

        assert analyze_path(fastpath_dir() / "batchsim.py") == []

    def test_engine_import_from_batchsim_would_fire(self):
        source = (
            "import repro.sim.engine\n"
            "from repro.analysis.verify import verify_schedule\n"
        )
        findings = analyze_source(source, "src/repro/fastpath/batchsim.py")
        assert [f.code for f in findings] == ["RPR220", "RPR220"]

    def test_core_imports_stay_allowed(self):
        source = (
            "from repro.core.strategy import get_strategy\n"
            "from repro.topology.hypercube import Hypercube\n"
            "from repro.errors import SimulationError\n"
        )
        assert analyze_source(source, "src/repro/fastpath/batchsim.py") == []


class TestTraceLayering:
    """RPR230: the tracing plane must stay layering-terminal."""

    def test_absolute_imports_flagged(self):
        source = (
            "import repro.exec.pool\n"
            "from repro.fastpath import batchsim\n"
        )
        findings = analyze_source(source, "src/repro/obs/trace.py")
        assert [f.code for f in findings] == ["RPR230", "RPR230"]
        assert [f.line for f in findings] == [1, 2]

    def test_relative_escape_flagged(self):
        source = "from ..exec import run_jobs\n"
        findings = analyze_source(source, "src/repro/obs/runlog.py")
        assert [f.code for f in findings] == ["RPR230"]

    def test_sim_import_fires_both_layering_rules(self):
        # a trace module importing the engine breaks RPR200 *and* RPR230
        source = "from repro.sim.engine import Engine\n"
        codes = [f.code for f in analyze_source(source, "src/repro/obs/prom.py")]
        assert codes == ["RPR200", "RPR230"]

    def test_rule_only_applies_to_trace_stems(self):
        # obs modules outside the tracing plane may import exec helpers
        source = "from repro.exec import run_jobs\n"
        assert analyze_source(source, "src/repro/obs/report.py") == []

    def test_rule_only_applies_inside_obs(self):
        source = "import repro.exec.pool\n"
        assert analyze_source(source, "src/repro/analysis/trace.py") == []

    def test_shipped_trace_modules_are_clean(self):
        from repro.lint.analyzer import obs_dir

        for stem in ("trace", "runlog", "prom"):
            assert analyze_path(obs_dir() / f"{stem}.py") == []
