"""Golden-value regression tables.

Every number here was measured by this reproduction and cross-checked
against the paper's closed forms (see EXPERIMENTS.md).  Any code change
that shifts one of these tables is either a bug or a deliberate
model change that must update EXPERIMENTS.md too — this test makes that
loud.
"""

import pytest

from repro.analysis.formulas import (
    clean_agent_moves_exact,
    clean_peak_agents,
    clean_with_cloning_agents,
    cloning_moves,
    visibility_agents,
    visibility_moves_exact,
)
from repro.analysis.lower_bounds import monotone_agents_lower_bound
from repro.core.states import AgentRole
from repro.core.strategy import get_strategy

# d:                         1   2   3    4    5    6     7     8
CLEAN_TEAM = [None, 2, 3, 5, 8, 15, 26, 51, 92, 183, 337]
CLEAN_AGENT_MOVES = [None, 2, 6, 16, 40, 96, 224, 512, 1152, 2560, 5632]
CLEAN_TOTAL_MOVES = [None, 4, 15, 42, 103, 234, 513, 1102, 2343, 4950, 10417]
CLEAN_MAKESPAN = [None, 3, 11, 29, 67, 143, 295, 597, 1199, 2399, 4795]
VIS_TEAM = [None, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
VIS_MOVES = [None, 1, 3, 8, 20, 48, 112, 256, 576, 1280, 2816]
CLONING_MOVES = [None, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023]
LOWER_BOUND = [None, 1, 2, 4, 7, 13, 23, 43, 78, 148, 274]
CLEAN_CLONING_AGENTS = [None, 2, 3, 5, 9, 17, 33, 65, 129, 257, 513]

DIMS = range(1, 11)


class TestFormulasGolden:
    @pytest.mark.parametrize("d", DIMS)
    def test_clean_team(self, d):
        assert clean_peak_agents(d) == CLEAN_TEAM[d]

    @pytest.mark.parametrize("d", DIMS)
    def test_clean_agent_moves(self, d):
        assert clean_agent_moves_exact(d) == CLEAN_AGENT_MOVES[d]

    @pytest.mark.parametrize("d", DIMS)
    def test_visibility_pair(self, d):
        assert visibility_agents(d) == VIS_TEAM[d]
        assert visibility_moves_exact(d) == VIS_MOVES[d]

    @pytest.mark.parametrize("d", DIMS)
    def test_cloning_moves(self, d):
        assert cloning_moves(d) == CLONING_MOVES[d]

    @pytest.mark.parametrize("d", DIMS)
    def test_lower_bound(self, d):
        assert monotone_agents_lower_bound(d) == LOWER_BOUND[d]

    @pytest.mark.parametrize("d", DIMS)
    def test_clean_with_cloning(self, d):
        assert clean_with_cloning_agents(d) == CLEAN_CLONING_AGENTS[d]


class TestMeasuredGolden:
    """Simulation outputs, not just formulas: total moves and makespans of
    Algorithm CLEAN include the synchronizer's walk, which only the
    generator (not a closed form) produces."""

    @pytest.mark.parametrize("d", DIMS)
    def test_clean_full_measurements(self, d):
        schedule = get_strategy("clean").run(d)
        assert schedule.team_size == CLEAN_TEAM[d]
        assert schedule.total_moves == CLEAN_TOTAL_MOVES[d]
        assert schedule.makespan == CLEAN_MAKESPAN[d]
        assert schedule.moves_by_role()[AgentRole.AGENT] == CLEAN_AGENT_MOVES[d]

    @pytest.mark.parametrize("d", range(1, 7))
    def test_protocol_plane_matches_where_exact(self, d):
        """Protocol-plane golden values (kept to d <= 6: larger runs are
        slow without adding coverage — d = 7+ is formula-tested above)."""
        from repro.protocols.visibility_protocol import run_visibility_protocol

        result = run_visibility_protocol(d)
        assert result.total_moves == VIS_MOVES[d]
        assert result.makespan == float(d)

    def test_harper_scoreboard_row(self):
        from repro.search.harper import harper_sweep_schedule

        schedule = harper_sweep_schedule(8)
        assert schedule.team_size == LOWER_BOUND[8] + 1 == 79

    def test_frontier_sweep_h6(self):
        from repro.search.frontier_sweep import frontier_sweep_schedule
        from repro.topology.generic import hypercube_graph

        schedule = frontier_sweep_schedule(hypercube_graph(6))
        assert schedule.team_size == 24
        assert schedule.total_moves == 384
