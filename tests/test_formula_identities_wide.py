"""Hypothesis-widened checks of the pure formula identities (large d).

The parametrized formula tests cover d <= ~15; these push the *pure
arithmetic* identities (no simulation) to d = 24, where any silent
float/overflow slip or off-by-one in the binomial bookkeeping would show.
"""

from math import comb

from hypothesis import given, settings
from hypothesis import strategies as st

# pure-arithmetic checks, but at d = 24 a single case can exceed the
# default 200ms hypothesis deadline; correctness, not speed, is under test
WIDE = settings(deadline=None, max_examples=20)

from repro.analysis import formulas
from repro.analysis.counting import (
    binomial,
    total_leaves,
    vandermonde_sum,
    weighted_leaf_sum,
)

WIDE_D = st.integers(min_value=2, max_value=24)


@WIDE
@given(WIDE_D)
def test_flow_conservation_everywhere(d):
    """guards(l) + extras(l) == guards(l+1) + returning leaves(l)."""
    for level in range(1, d):
        lhs = comb(d, level) + formulas.extra_agents_for_level(d, level)
        rhs = comb(d, level + 1) + comb(d - 1, level - 1)
        assert lhs == rhs


@WIDE
@given(WIDE_D)
def test_lemma_3_type_sum_identity(d):
    for level in range(1, d):
        assert formulas.extra_agents_for_level_by_types(
            d, level
        ) == formulas.extra_agents_for_level(d, level)


@WIDE
@given(WIDE_D)
def test_theorem_8_double_counting(d):
    assert formulas.visibility_moves_by_edges(d) == formulas.visibility_moves_exact(d)


@WIDE
@given(WIDE_D)
def test_agent_moves_closed_form(d):
    assert formulas.clean_agent_moves_exact(d) == (1 << d) * (d + 1) // 2


@WIDE
@given(WIDE_D)
def test_weighted_leaf_closed_form(d):
    assert weighted_leaf_sum(d) == (d + 1) * (1 << (d - 2))


@WIDE
@given(WIDE_D)
def test_vandermonde(d):
    for L in range(0, d - 1):
        assert vandermonde_sum(d, L) == binomial(d - 1, L + 2)


@WIDE
@given(WIDE_D)
def test_squad_flow_theorem_5(d):
    assert sum(formulas.agents_for_type(i) for i in range(d)) == formulas.agents_for_type(d)


@WIDE
@given(WIDE_D)
def test_cloning_team_is_leaf_count(d):
    assert formulas.cloning_agents(d) == total_leaves(d) == 1 << (d - 1)


@WIDE
@given(WIDE_D)
def test_peak_agents_bracketing(d):
    """d+1 <= team <= 2*C(d, ceil(d/2)) + 2 for every d."""
    peak = formulas.clean_peak_agents(d)
    centre = comb(d, (d + 1) // 2)
    assert d + 1 <= peak <= 2 * centre + 2


@WIDE
@given(st.integers(min_value=2, max_value=16))
def test_lower_bound_monotone_in_d(d):
    from repro.analysis.lower_bounds import monotone_agents_lower_bound

    assert monotone_agents_lower_bound(d) > monotone_agents_lower_bound(d - 1)
