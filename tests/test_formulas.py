"""Tests for the paper's closed forms (Lemma 3 through Theorem 8, Section 5)."""

from math import comb

import pytest

from repro.analysis import formulas
from repro.analysis.counting import total_leaves


class TestLemma3:
    """Extra agents requested before cleaning level l -> l+1."""

    @pytest.mark.parametrize("d", range(2, 14))
    def test_per_type_sum_equals_closed_form(self, d):
        for level in range(1, d):
            assert formulas.extra_agents_for_level_by_types(
                d, level
            ) == formulas.extra_agents_for_level(d, level)

    @pytest.mark.parametrize("d", range(2, 12))
    def test_flow_conservation(self, d):
        """guards(l) + extras(l) = guards(l+1) + returning leaves(l)."""
        for level in range(1, d):
            lhs = comb(d, level) + formulas.extra_agents_for_level(d, level)
            rhs = comb(d, level + 1) + comb(d - 1, level - 1)
            assert lhs == rhs

    def test_out_of_range_levels_zero(self):
        assert formulas.extra_agents_for_level(5, 0) == 0
        assert formulas.extra_agents_for_level(5, 5) == 0

    def test_extras_never_negative(self):
        for d in range(2, 14):
            for level in range(1, d):
                assert formulas.extra_agents_for_level(d, level) >= 0


class TestTheorem2:
    """Team size of Algorithm CLEAN."""

    def test_degenerate(self):
        assert formulas.clean_peak_agents(0) == 1
        assert formulas.clean_peak_agents(1) == 2

    @pytest.mark.parametrize("d", range(4, 14, 2))
    def test_even_d_maximizers(self, d):
        """The maximum is at l = d/2 or l = d/2 - 1 (Lemma 4)."""
        assert set(formulas.clean_peak_agents_maximizers(d)) == {d // 2 - 1, d // 2}

    def test_maximizers_degenerate(self):
        assert formulas.clean_peak_agents_maximizers(2) == [1]
        assert formulas.clean_peak_agents_maximizers(1) == []

    @pytest.mark.parametrize("d", range(2, 14))
    def test_peak_is_max_of_passes(self, d):
        peak = formulas.clean_peak_agents(d)
        passes = [
            formulas.clean_active_agents_during_pass(d, l) for l in range(1, d)
        ]
        assert peak == max([d + 1] + passes)

    @pytest.mark.parametrize("d", range(4, 22, 2))
    def test_growth_is_central_binomial(self, d):
        """Theta(C(d, d/2)): the ratio to the central binomial is bounded.

        (The paper labels the bound O(n / log n); the true order is
        n / sqrt(log n) -- see EXPERIMENTS.md.)
        """
        peak = formulas.clean_peak_agents(d)
        central = comb(d, d // 2)
        assert central <= peak <= 2 * central + 2

    def test_far_below_visibility_team(self):
        for d in range(6, 16):
            assert formulas.clean_peak_agents(d) < formulas.visibility_agents(d)


class TestTheorem3:
    @pytest.mark.parametrize("d", range(2, 16))
    def test_agent_moves_closed_form(self, d):
        """(n/2)(log n + 1) agent moves."""
        n = 2**d
        assert formulas.clean_agent_moves_exact(d) == n * (d + 1) // 2

    def test_escort_moves(self):
        for d in range(0, 10):
            assert formulas.clean_sync_escort_moves(d) == 2 * (2**d - 1)

    @pytest.mark.parametrize("d", range(2, 16))
    def test_total_bound_is_n_log_n(self, d):
        bound = formulas.clean_total_moves_upper_bound(d)
        n = 2**d
        assert bound <= 8 * n * d  # comfortably O(n log n)
        assert bound >= n  # and not trivially small


class TestTheorems5and7and8:
    @pytest.mark.parametrize("d", range(1, 16))
    def test_agents_n_over_2(self, d):
        assert formulas.visibility_agents(d) == 2 ** (d - 1)

    def test_agents_degenerate(self):
        assert formulas.visibility_agents(0) == 1
        with pytest.raises(ValueError):
            formulas.visibility_agents(-1)

    @pytest.mark.parametrize("d", range(0, 16))
    def test_steps_log_n(self, d):
        assert formulas.visibility_time_steps(d) == d

    @pytest.mark.parametrize("d", range(2, 16))
    def test_moves_closed_form(self, d):
        assert formulas.visibility_moves_exact(d) == (d + 1) * 2 ** (d - 2)

    @pytest.mark.parametrize("d", range(0, 12))
    def test_edge_accounting_identity(self, d):
        """Per-edge and per-leaf accountings of Theorem 8 agree."""
        assert formulas.visibility_moves_by_edges(d) == formulas.visibility_moves_exact(d)

    def test_agents_for_type(self):
        assert formulas.agents_for_type(0) == 1
        assert formulas.agents_for_type(1) == 1
        assert formulas.agents_for_type(5) == 16
        with pytest.raises(ValueError):
            formulas.agents_for_type(-1)

    @pytest.mark.parametrize("k", range(1, 12))
    def test_squad_conservation(self, k):
        """2^{k-1} = 1 + sum_{i=1}^{k-1} 2^{i-1}: arrivals equal departures
        (the Theorem 5 flow argument)."""
        incoming = formulas.agents_for_type(k)
        outgoing = sum(formulas.agents_for_type(i) for i in range(k))
        assert incoming == outgoing


class TestSection5:
    @pytest.mark.parametrize("d", range(0, 14))
    def test_cloning_agents_is_leaf_count(self, d):
        assert formulas.cloning_agents(d) == total_leaves(d)

    @pytest.mark.parametrize("d", range(0, 14))
    def test_cloning_moves_n_minus_1(self, d):
        assert formulas.cloning_moves(d) == 2**d - 1

    @pytest.mark.parametrize("d", range(1, 14))
    def test_clean_with_cloning_is_half_n_plus_one(self, d):
        """Cloning in Algorithm CLEAN inflates the team to n/2 + 1."""
        assert formulas.clean_with_cloning_agents(d) == 2 ** (d - 1) + 1

    def test_cloning_worse_than_reuse_for_clean(self):
        for d in range(4, 14):
            assert formulas.clean_with_cloning_agents(d) > formulas.clean_peak_agents(d)


class TestSummaryTable:
    def test_contains_all_strategies(self):
        table = formulas.summary_table(6)
        assert set(table) == {"clean", "visibility", "cloning", "synchronous"}
        assert table["visibility"]["agents"] == 32
        assert table["cloning"]["moves"] == 63

    def test_reference_curves(self):
        assert formulas.n_over_log_n(0) == 1.0
        assert formulas.n_over_log_n(4) == 4.0
        assert formulas.n_log_n(3) == 24.0
