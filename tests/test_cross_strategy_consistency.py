"""Cross-strategy consistency: relations that must hold between strategies.

Each test pins a structural relation *between* two strategies or planes —
the kind of coherence that catches a refactor breaking one generator
while its own unit tests still pass.
"""

import pytest

from repro.analysis import formulas
from repro.core.schedule import MoveKind
from repro.core.strategy import get_strategy
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

DIMS = [2, 3, 4, 5, 6]


class TestVisitOrders:
    @pytest.mark.parametrize("d", DIMS)
    def test_clean_and_level_sweep_both_level_ordered(self, d):
        h = Hypercube(d)
        for name in ("clean", "level-sweep"):
            order = get_strategy(name).run(d).first_visit_order()
            levels = [h.level(x) for x in order]
            assert levels == sorted(levels), name

    @pytest.mark.parametrize("d", DIMS)
    def test_visibility_and_cloning_share_visit_times(self, d):
        """Same wave structure: every node is first reached at the same
        ideal time by both Section 4/5 tree strategies."""
        vis = get_strategy("visibility").run(d).visit_time()
        clone = get_strategy("cloning").run(d).visit_time()
        assert vis == clone

    @pytest.mark.parametrize("d", DIMS)
    def test_all_strategies_visit_root_first(self, d):
        from repro.core.strategy import available_strategies

        for name in available_strategies():
            assert get_strategy(name).run(d).first_visit_order()[0] == 0, name


class TestFinalConfigurations:
    @pytest.mark.parametrize("d", DIMS)
    def test_tree_strategies_end_on_the_leaves(self, d):
        leaves = sorted(BroadcastTree(d).leaves())
        for name in ("visibility", "cloning", "synchronous"):
            finals = sorted(get_strategy(name).run(d).final_positions().values())
            assert finals == leaves, name

    @pytest.mark.parametrize("d", DIMS)
    def test_pool_strategies_end_at_home(self, d):
        """CLEAN (minus its synchronizer) and level-sweep park everyone
        back at the homebase."""
        clean = get_strategy("clean").run(d).final_positions()
        clean.pop(0)  # the synchronizer rests where it finished
        assert set(clean.values()) <= {0}
        sweep = get_strategy("level-sweep").run(d).final_positions()
        assert set(sweep.values()) <= {0}


class TestMoveStructure:
    @pytest.mark.parametrize("d", DIMS)
    def test_clean_escorts_are_twice_the_deploys(self, d):
        """Every deploy down a tree edge is escorted out and back."""
        kinds = get_strategy("clean").run(d).moves_by_kind()
        assert kinds[MoveKind.ESCORT] == 2 * kinds[MoveKind.DEPLOY]

    @pytest.mark.parametrize("d", DIMS)
    def test_clean_dispatch_and_return_balance(self, d):
        """Lemma 3 flow, globally: total dispatch distance equals total
        return distance plus the net deployment left in the cube — here
        everyone returns, so dispatches (root->level walks) plus deploys
        equal returns plus ... simplest invariant: every agent journey is
        closed, so RETURN moves equal DISPATCH moves plus first-leg
        deploys minus the tree deploys (checked as totals)."""
        schedule = get_strategy("clean").run(d)
        kinds = schedule.moves_by_kind()
        agent_moves = schedule.agent_moves()
        assert (
            kinds[MoveKind.DEPLOY]
            + kinds[MoveKind.DISPATCH]
            + kinds[MoveKind.RETURN]
            == agent_moves
        )
        # closed journeys: downward distance == upward distance
        assert kinds[MoveKind.DEPLOY] + kinds[MoveKind.DISPATCH] == kinds[MoveKind.RETURN]

    @pytest.mark.parametrize("d", DIMS)
    def test_visibility_moves_split_by_wave_sum_to_total(self, d):
        schedule = get_strategy("visibility").run(d)
        waves = schedule.metadata["wave_sizes"]
        assert sum(waves.values()) == schedule.total_moves

    @pytest.mark.parametrize("d", DIMS)
    def test_cloning_moves_are_visibility_edges(self, d):
        """Cloning's move *set* equals the set of edges visibility uses —
        one representative per squad."""
        vis_edges = {(m.src, m.dst) for m in get_strategy("visibility").run(d).moves}
        clone_edges = {(m.src, m.dst) for m in get_strategy("cloning").run(d).moves}
        assert clone_edges == vis_edges


class TestTeamRelations:
    @pytest.mark.parametrize("d", DIMS)
    def test_lower_bound_under_everything(self, d):
        from repro.analysis.lower_bounds import monotone_agents_lower_bound
        from repro.core.strategy import available_strategies

        lb = monotone_agents_lower_bound(d)
        for name in available_strategies():
            assert get_strategy(name).run(d).team_size >= lb, name

    @pytest.mark.parametrize("d", DIMS)
    def test_harper_is_the_thriftiest(self, d):
        from repro.core.strategy import available_strategies
        from repro.search.harper import harper_sweep_schedule

        harper = harper_sweep_schedule(d).team_size
        for name in available_strategies():
            assert harper <= get_strategy(name).run(d).team_size + 1, name

    @pytest.mark.parametrize("d", DIMS)
    def test_makespan_ordering(self, d):
        """Visibility's log n is the floor among the full-sweep strategies."""
        from repro.core.strategy import available_strategies

        vis = get_strategy("visibility").run(d).makespan
        for name in available_strategies():
            assert get_strategy(name).run(d).makespan >= vis, name
