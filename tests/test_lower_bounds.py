"""Tests for the monotone lower bound (Harper) and the Harper sweep."""

import pytest

from repro.analysis.formulas import clean_peak_agents, visibility_agents
from repro.analysis.lower_bounds import (
    bound_vs_strategies,
    boundary_profile,
    exhaustive_boundary_profile,
    monotone_agents_lower_bound,
    simplicial_order,
)
from repro.analysis.verify import ScheduleVerifier
from repro.errors import TopologyError
from repro.search.harper import harper_sweep_schedule
from repro.topology.generic import hypercube_graph


class TestSimplicialOrder:
    def test_small(self):
        assert simplicial_order(2) == [0, 2, 1, 3]

    @pytest.mark.parametrize("d", range(0, 8))
    def test_is_permutation(self, d):
        order = simplicial_order(d)
        assert sorted(order) == list(range(1 << d))

    @pytest.mark.parametrize("d", range(1, 8))
    def test_weight_monotone(self, d):
        from repro._bitops import popcount

        weights = [popcount(x) for x in simplicial_order(d)]
        assert weights == sorted(weights)

    def test_every_prefix_connected(self):
        """Prefixes are valid sweep orders: each node has an earlier
        neighbour (needed by the Harper sweep's routing)."""
        h = hypercube_graph(5)
        seen = set()
        for x in simplicial_order(5):
            if x != 0:
                assert any(y in seen for y in h.neighbors(x))
            seen.add(x)


class TestBoundaryProfile:
    @pytest.mark.parametrize("d", range(1, 5))
    def test_matches_exhaustive_minimum(self, d):
        """Harper's theorem, checked against brute force for d <= 4: the
        simplicial prefixes attain the minimal inner boundary pointwise."""
        assert boundary_profile(d) == exhaustive_boundary_profile(d)

    @pytest.mark.parametrize("d", range(1, 10))
    def test_profile_shape(self, d):
        profile = boundary_profile(d)
        n = 1 << d
        assert profile[1] == 1
        assert profile[n] == 0
        assert len(profile) == n

    def test_incremental_matches_direct(self):
        """The O(n d) incremental boundary tracking equals a direct
        recount on every prefix (d = 6 spot check)."""
        from repro.analysis.lower_bounds import _inner_boundary_size

        d = 6
        members = set()
        profile = boundary_profile(d)
        for m, x in enumerate(simplicial_order(d), start=1):
            members.add(x)
            assert profile[m] == _inner_boundary_size(members, d)


class TestLowerBound:
    def test_known_values(self):
        assert [monotone_agents_lower_bound(d) for d in range(0, 9)] == [
            1, 1, 2, 4, 7, 13, 23, 43, 78,
        ]

    def test_tight_on_h3(self):
        """LB(3) = 4 equals the brute-force contiguous optimum."""
        from repro.search.optimal import optimal_search_number

        assert monotone_agents_lower_bound(3) == 4
        assert optimal_search_number(hypercube_graph(3)) == 4

    @pytest.mark.parametrize("d", range(1, 12))
    def test_bounds_every_strategy(self, d):
        lb = monotone_agents_lower_bound(d)
        assert lb <= clean_peak_agents(d)
        if d >= 2:
            assert lb <= visibility_agents(d)

    @pytest.mark.parametrize("d", range(4, 14))
    def test_asymptotics_central_binomial(self, d):
        """LB = Θ(C(d, d/2)): stronger than the paper's conjectured
        Ω(n / log n)."""
        from repro.analysis.counting import central_binomial

        lb = monotone_agents_lower_bound(d)
        assert central_binomial(d) <= lb <= 2 * central_binomial(d)

    def test_scoreboard(self):
        board = bound_vs_strategies(6)
        assert board["lower_bound"] == 23
        assert board["clean"] == 26
        assert board["visibility"] == 32

    def test_dimension_guards(self):
        with pytest.raises(TopologyError):
            boundary_profile(21)
        with pytest.raises(TopologyError):
            exhaustive_boundary_profile(5)
        with pytest.raises(TopologyError):
            simplicial_order(-1)


class TestHarperSweep:
    @pytest.mark.parametrize("d", range(1, 7))
    def test_verifies(self, d):
        schedule = harper_sweep_schedule(d)
        report = ScheduleVerifier(hypercube_graph(d)).verify(schedule)
        assert report.ok, (d, report.summary())

    @pytest.mark.parametrize("d", range(1, 10))
    def test_team_within_one_of_lower_bound(self, d):
        """The open-problem pincer: LB <= optimum <= team <= LB + 1."""
        schedule = harper_sweep_schedule(d)
        lb = monotone_agents_lower_bound(d)
        assert lb <= schedule.team_size <= lb + 1

    @pytest.mark.parametrize("d", range(3, 10))
    def test_beats_clean_team(self, d):
        assert harper_sweep_schedule(d).team_size <= clean_peak_agents(d)

    def test_metadata_records_bound(self):
        schedule = harper_sweep_schedule(4)
        assert schedule.metadata["monotone_lower_bound"] == 7
        assert schedule.strategy == "harper-sweep"

    def test_degenerate(self):
        schedule = harper_sweep_schedule(0)
        assert schedule.total_moves == 0
        with pytest.raises(TopologyError):
            harper_sweep_schedule(-1)
