"""Deterministic cross-process telemetry merge (the tentpole contract).

Workers ship their span forest + metrics delta back over the result pipe;
the parent merges in job-definition order.  These drills pin the
determinism claims: shuffled completion order, crash-requeued workers and
resume-from-checkpoint must all produce byte-identical merged counters
and worker-span-tree digests.
"""

import json
import random

import pytest

from repro.exec import (
    CRASH_ENV,
    ExecutorConfig,
    Job,
    ParallelExecutor,
    merge_outcome_telemetry,
    montecarlo_jobs,
)
from repro.fastpath.batchsim import BatchScenarioSpec, run_batch
from repro.obs import MetricsRegistry, Tracer, span_tree_digest

FAST = dict(backoff_base=0.0, backoff_factor=1.0, backoff_max=0.0)

#: Counter families whose merged totals are shard-invariant.  Per-shard
#: memoization counters (``timelines_built``, ``inert_seed_cached``) are
#: legitimately shard-dependent — each worker warms its own caches.
CORE = (
    "fastpath.batchsim.trials",
    "fastpath.batchsim.captures",
    "fastpath.batchsim.escapes",
)


def spec(trials: int = 12) -> BatchScenarioSpec:
    return BatchScenarioSpec(
        strategy="visibility",
        dimension=4,
        trials=trials,
        intruder="inert",
        rng_seed=7,
    )


def run_parallel(jobs: int = 2, shards: int = 3, checkpoint=None, **cfg):
    """(outcomes, merged registry, parent tracer) for a sharded campaign."""
    tracer = Tracer(run_id="fixed-run")
    registry = MetricsRegistry()
    executor = ParallelExecutor(
        ExecutorConfig(jobs=jobs, **cfg), metrics=registry, tracer=tracer
    )
    if checkpoint is not None:
        from repro.exec import Checkpoint

        with Checkpoint(checkpoint) as ckpt:
            outcomes = executor.run(montecarlo_jobs(spec(), shards), checkpoint=ckpt)
    else:
        outcomes = executor.run(montecarlo_jobs(spec(), shards))
    return outcomes, registry, tracer


def counters_of(registry: MetricsRegistry):
    return registry.snapshot()["counters"]


def worker_counters(registry: MetricsRegistry):
    """The worker-merged counter families, canonically serialized.

    Parent-side ``exec.*`` bookkeeping (crashes, retries, cached hits) is
    excluded: a crash-requeued or resumed run *really did* crash or hit
    the checkpoint, and the counters must say so — it is the merged
    worker telemetry that the byte-identity contract pins.
    """
    return json.dumps(
        {k: v for k, v in counters_of(registry).items() if not k.startswith("exec.")},
        sort_keys=True,
    )


def worker_digest(outcomes) -> str:
    """Digest of the worker-shipped span forests only, in job-key order.

    Parent-side ``exec.attempt`` spans legitimately differ under
    crash-requeue (the killed attempt never ships records), so the
    byte-identity contract covers the work the workers *completed*.
    """
    tracer = Tracer(run_id="digest")
    for outcome in sorted(outcomes, key=lambda o: o.key):
        tracer.attach((outcome.telemetry or {}).get("spans") or [])
    return span_tree_digest(tracer.to_records())


class TestWorkerCapture:
    def test_outcomes_carry_spans_and_metrics(self):
        outcomes, _, _ = run_parallel()
        for outcome in outcomes:
            names = [s["name"] for s in outcome.telemetry["spans"]]
            assert names[0] == "worker.job"
            assert "fastpath.run_batch" in names
            assert outcome.telemetry["metrics"]["counters"]["fastpath.batchsim.trials"] == 4

    def test_capture_off_without_sinks(self):
        executor = ParallelExecutor(ExecutorConfig(jobs=2))
        outcomes = executor.run(
            [Job(key=f"echo:{i}", task="echo", payload={"i": i}, index=i) for i in range(2)]
        )
        assert all(o.telemetry is None for o in outcomes)

    def test_parent_tree_nests_worker_spans(self):
        _, _, tracer = run_parallel()
        records = tracer.to_records()
        by_id = {r["span"]: r for r in records}
        roots = [r for r in records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["exec.run"]
        job_spans = [r for r in records if r["name"] == "exec.job"]
        assert len(job_spans) == 3
        for worker_span in (r for r in records if r["name"] == "worker.job"):
            assert by_id[worker_span["parent"]]["name"] == "exec.job"


class TestMergedCounters:
    def test_sharded_matches_serial_campaign(self):
        serial = MetricsRegistry()
        run_batch(spec(), metrics=serial)
        _, merged, _ = run_parallel()
        serial_counters = counters_of(serial)
        merged_counters = counters_of(merged)
        for name in CORE:
            assert merged_counters.get(name, 0) == serial_counters.get(name, 0)

    def test_merge_is_order_insensitive(self):
        outcomes, merged, _ = run_parallel()
        shuffled = list(outcomes)
        random.Random(13).shuffle(shuffled)
        replay = merge_outcome_telemetry(shuffled)
        assert worker_counters(replay) == worker_counters(merged)

    def test_jobs_4_equals_jobs_2(self):
        _, two, _ = run_parallel(jobs=2)
        _, four, _ = run_parallel(jobs=4)
        assert json.dumps(counters_of(two), sort_keys=True) == json.dumps(
            counters_of(four), sort_keys=True
        )


class TestCrashRequeue:
    def test_crashed_worker_telemetry_is_byte_identical(self, monkeypatch):
        baseline, base_reg, _ = run_parallel(retries=2, **FAST)
        monkeypatch.setenv(CRASH_ENV, "montecarlo:visibility:d=4:trials=4..8::1")
        crashed, crash_reg, crash_tracer = run_parallel(retries=2, **FAST)
        by_key = {o.key: o for o in crashed}
        assert by_key["montecarlo:visibility:d=4:trials=4..8"].attempts == 2
        assert worker_counters(base_reg) == worker_counters(crash_reg)
        assert worker_digest(baseline) == worker_digest(crashed)
        # the retry is visible as a distinct attempt span, not hidden
        attempts = [
            r
            for r in crash_tracer.to_records()
            if r["name"] == "exec.attempt" and r["attrs"]["outcome"] == "crash"
        ]
        assert len(attempts) == 1


class TestResume:
    def test_resume_restores_merged_telemetry(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first, first_reg, _ = run_parallel(checkpoint=path)
        second, second_reg, _ = run_parallel(checkpoint=path)
        assert all(o.cached for o in second)
        assert all(o.telemetry is not None for o in second)
        assert worker_counters(first_reg) == worker_counters(second_reg)
        assert worker_digest(first) == worker_digest(second)

    def test_digest_is_replay_invariant_across_modes(self, tmp_path, monkeypatch):
        """One digest for shuffled, crashed and resumed executions."""
        path = tmp_path / "run.jsonl"
        plain, _, _ = run_parallel()
        resumed_seed, _, _ = run_parallel(checkpoint=path)
        resumed, _, _ = run_parallel(checkpoint=path)
        monkeypatch.setenv(CRASH_ENV, "montecarlo:visibility:d=4:trials=0..4::1")
        crashed, _, _ = run_parallel(retries=2, **FAST)
        digests = {
            worker_digest(plain),
            worker_digest(resumed_seed),
            worker_digest(resumed),
            worker_digest(crashed),
        }
        assert len(digests) == 1


class TestMergeHelper:
    def test_accepts_outcomes_without_telemetry(self):
        outcomes, _, _ = run_parallel()
        stripped = [o for o in outcomes[:1]]
        merged = merge_outcome_telemetry(stripped + [])
        assert counters_of(merged)["fastpath.batchsim.trials"] == 4

    def test_folds_into_existing_registry(self):
        outcomes, _, _ = run_parallel()
        registry = MetricsRegistry()
        registry.counter("preexisting").inc()
        merge_outcome_telemetry(outcomes, metrics=registry)
        counters = counters_of(registry)
        assert counters["preexisting"] == 1
        assert counters["fastpath.batchsim.trials"] == 12


class TestCheckpointSchema:
    def test_telemetry_round_trips_through_checkpoint(self, tmp_path):
        from repro.exec import JobOutcome

        outcomes, _, _ = run_parallel(checkpoint=tmp_path / "run.jsonl")
        line = next(
            line
            for line in (tmp_path / "run.jsonl").read_text().splitlines()[1:]
            if json.loads(line).get("key") == outcomes[0].key
        )
        restored = JobOutcome.from_json_dict(json.loads(line))
        assert restored.telemetry["metrics"] == outcomes[0].telemetry["metrics"]
        assert [s["name"] for s in restored.telemetry["spans"]] == [
            s["name"] for s in outcomes[0].telemetry["spans"]
        ]


class TestTraceFlagCli:
    def test_montecarlo_trace_flag_writes_runlog(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main as cli_main
        from repro.obs import read_runlog

        monkeypatch.chdir(tmp_path)
        code = cli_main(
            [
                "montecarlo",
                "-d",
                "4",
                "--trials",
                "8",
                "--jobs",
                "2",
                "--shards",
                "2",
                "--seed",
                "7",
                "--trace",
                "traces",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        runs = list((tmp_path / "traces").glob("*.jsonl"))
        assert len(runs) == 1
        data = read_runlog(runs[0])
        assert data.complete
        assert data.manifest["extra"]["command"] == "montecarlo"
        names = {s["name"] for s in data.spans}
        assert {"exec.run", "exec.job", "worker.job", "fastpath.run_batch"} <= names
        assert data.counters["fastpath.batchsim.trials"] == 8
        assert data.run_id == runs[0].stem

    def test_serial_trace_flag_captures_strategy_spans(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main as cli_main
        from repro.obs import read_runlog

        monkeypatch.chdir(tmp_path)
        assert (
            cli_main(
                ["montecarlo", "-d", "3", "--trials", "4", "--seed", "1", "--trace"]
            )
            == 0
        )
        runs = list((tmp_path / ".repro-trace").glob("*.jsonl"))
        assert len(runs) == 1
        names = {s["name"] for s in read_runlog(runs[0]).spans}
        assert "fastpath.run_batch" in names
        assert "strategy.run" in names

    def test_trace_subcommand_renders_fresh_runlog(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main as cli_main

        monkeypatch.chdir(tmp_path)
        cli_main(
            [
                "montecarlo", "-d", "4", "--trials", "8", "--jobs", "2",
                "--shards", "2", "--seed", "7", "--trace",
            ]
        )
        capsys.readouterr()
        assert cli_main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        tree = out.split("critical path:")[0]
        assert tree.count("worker.job") == 2  # one per shard, same run id
        assert "critical path:" in out
