"""Focused tests for odd hypercube degrees.

The paper assumes even ``d`` "for the ease of discussion — minor technical
modifications are required for odd degrees".  This module pins down what
those modifications amount to in our implementation: the same formulas
with ``ceil``/``floor`` at the central levels, and identical correctness.
"""

import pytest

from repro.analysis import formulas
from repro.analysis.counting import binomial
from repro.analysis.verify import verify_schedule
from repro.core.strategy import available_strategies, get_strategy

ODD = [1, 3, 5, 7, 9]


class TestCorrectnessAtOddD:
    @pytest.mark.parametrize("d", ODD)
    def test_all_strategies_verify(self, d):
        for name in available_strategies():
            schedule = get_strategy(name).run(d)
            report = verify_schedule(schedule)
            assert report.ok, (name, d, report.summary())


class TestOddFormulas:
    @pytest.mark.parametrize("d", [3, 5, 7, 9, 11])
    def test_clean_peak_maximizers_straddle_center(self, d):
        """For odd d the unique maximizing pass is l = (d-1)/2: the two
        even-d maximizers collapse into one."""
        maximizers = formulas.clean_peak_agents_maximizers(d)
        assert maximizers == [(d - 1) // 2]

    @pytest.mark.parametrize("d", [3, 5, 7, 9])
    def test_team_formula_odd(self, d):
        """Peak = C(d, (d+1)/2) + C(d-1, (d-3)/2) + 1 for odd d >= 3."""
        l = (d - 1) // 2
        expected = binomial(d, l + 1) + binomial(d - 1, l - 1) + 1
        assert formulas.clean_peak_agents(d) == expected
        assert get_strategy("clean").run(d).team_size == expected

    @pytest.mark.parametrize("d", ODD)
    def test_visibility_formulas_parity_free(self, d):
        s = get_strategy("visibility").run(d)
        assert s.team_size == formulas.visibility_agents(d)
        assert s.total_moves == formulas.visibility_moves_exact(d)
        assert s.makespan == d

    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_agent_moves_parity_free(self, d):
        from repro.core.states import AgentRole

        s = get_strategy("clean").run(d)
        assert s.moves_by_role()[AgentRole.AGENT] == formulas.clean_agent_moves_exact(d)

    def test_odd_vs_even_team_growth_interleaves(self):
        """Team sizes are strictly increasing across parities — no parity
        anomaly in the sequence."""
        teams = [formulas.clean_peak_agents(d) for d in range(1, 14)]
        assert teams == sorted(teams)
        assert all(a < b for a, b in zip(teams, teams[1:]))
