"""Tests for the generic frontier protocol (real agents on any graph)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.protocols.frontier_protocol import run_frontier_protocol
from repro.search.frontier_sweep import bfs_boundary_width
from repro.sim.scheduling import AdversarialSlowestDelay, RandomDelay
from repro.topology.generic import (
    GraphAdapter,
    grid_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)

GRAPHS = [
    path_graph(7),
    ring_graph(7),
    star_graph(5),
    grid_graph(3, 3),
    hypercube_graph(3),
    tree_graph([0, 0, 1, 1, 2, 2]),
]


class TestCorrectness:
    @pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
    def test_cleans_standard_graphs(self, graph):
        result = run_frontier_protocol(graph)
        assert result.ok, (graph.name, result.summary())

    @pytest.mark.parametrize("seed", range(3))
    def test_random_delays(self, seed):
        result = run_frontier_protocol(grid_graph(3, 3), delay=RandomDelay(seed=seed))
        assert result.ok, result.summary()

    def test_straggler_coordinator(self):
        result = run_frontier_protocol(
            ring_graph(6), delay=AdversarialSlowestDelay(slow_agents=[0], factor=15)
        )
        assert result.ok

    def test_walker_intruder_caught(self):
        result = run_frontier_protocol(hypercube_graph(3), intruder="walker")
        assert result.ok
        assert result.intruder_captured

    @pytest.mark.parametrize("homebase", [0, 4, 8])
    def test_any_homebase(self, homebase):
        result = run_frontier_protocol(grid_graph(3, 3), homebase=homebase)
        assert result.ok

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(st.data())
    def test_random_connected_graphs(self, data):
        from .conftest import connected_graphs

        g = data.draw(connected_graphs(max_nodes=9, max_extra_edges=4))
        result = run_frontier_protocol(g)
        assert result.ok, result.summary()


class TestResources:
    def test_default_team_is_width_plus_two(self):
        g = grid_graph(3, 3)
        result = run_frontier_protocol(g)
        assert result.team_size == bfs_boundary_width(g) + 2

    def test_generous_team_is_harmless(self):
        result = run_frontier_protocol(ring_graph(6), team_size=8)
        assert result.ok

    def test_insufficient_team_deadlocks_and_is_flagged(self):
        """Unlike CLEAN's protocol, the frontier escort assumes the default
        provisioning: with fewer agents the escort abandons the homebase
        (recontamination) before stalling — both failures are reported."""
        g = hypercube_graph(3)
        result = run_frontier_protocol(g, team_size=2)
        assert result.deadlocked
        assert not result.ok
        assert not result.monotone

    def test_needs_two_agents(self):
        with pytest.raises(SimulationError):
            run_frontier_protocol(path_graph(3), team_size=1)

    def test_coordinator_never_deploys(self):
        """Agent 0 (the coordinator) always returns home: its final node is
        the homebase."""
        result = run_frontier_protocol(grid_graph(2, 3))
        coordinator_moves = [e for e in result.trace.moves() if e.agent == 0]
        assert coordinator_moves[-1].node == 0
