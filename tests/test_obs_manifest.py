"""Tests for run manifests: schema, engine integration, benchmark payloads."""

import json

from repro.obs import MANIFEST_SCHEMA, build_manifest, git_revision, write_manifest
from repro.obs.manifest import describe_topology
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.scheduling import RandomDelay
from repro.topology.hypercube import Hypercube


class TestBuildManifest:
    def test_schema_keys_always_present(self):
        manifest = build_manifest()
        for key in ("schema", "git", "python", "seed", "topology", "model", "delay", "metrics"):
            assert key in manifest
        assert manifest["schema"] == MANIFEST_SCHEMA

    def test_topology_description(self):
        desc = describe_topology(Hypercube(4))
        assert desc == {"type": "Hypercube", "n": 16, "dimension": 4}
        assert describe_topology(None) is None

    def test_topology_dict_passthrough(self):
        given = {"type": "Custom", "n": 5}
        assert build_manifest(topology=given)["topology"] == given

    def test_extra_only_when_provided(self):
        assert "extra" not in build_manifest()
        manifest = build_manifest(extra={"benchmark": "x"})
        assert manifest["extra"] == {"benchmark": "x"}

    def test_git_revision_in_checkout(self):
        # this test runs inside the repo, so a revision must resolve —
        # and the manifest must carry the same cached value
        revision = git_revision()
        assert revision
        assert build_manifest()["git"] == revision

    def test_json_serializable(self):
        manifest = build_manifest(
            seed=3,
            topology=Hypercube(3),
            model={"visibility": True},
            delay="unit",
            metrics={"moves": 8},
        )
        json.dumps(manifest)

    def test_write_manifest(self, tmp_path):
        path = write_manifest(tmp_path / "m.json", build_manifest(seed=1))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["seed"] == 1


class TestEngineManifest:
    def test_every_run_carries_a_manifest(self):
        result = run_visibility_protocol(3)
        manifest = result.manifest
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["topology"] == {"type": "Hypercube", "n": 8, "dimension": 3}
        assert manifest["model"] == {
            "visibility": True,
            "cloning": False,
            "global_clock": False,
        }
        assert manifest["delay"] == "UnitDelay"

    def test_manifest_metrics_match_result(self):
        result = run_visibility_protocol(3)
        metrics = result.manifest["metrics"]
        assert metrics["total_moves"] == result.total_moves
        assert metrics["makespan"] == result.makespan
        assert metrics["team_size"] == result.team_size
        assert metrics["all_clean"] is True
        assert metrics["monotone"] is True
        assert metrics["contiguous"] is True

    def test_manifest_records_delay_model(self):
        result = run_visibility_protocol(3, delay=RandomDelay(seed=7))
        assert "Random" in result.manifest["delay"]

    def test_manifest_extra_records_run_inputs(self):
        result = run_visibility_protocol(3)
        extra = result.manifest["extra"]
        assert extra["homebase"] == 0
        assert extra["intruder"] == "reachable"
        assert extra["check_contiguity"] is True


class TestBenchmarkManifests:
    def test_throughput_payload_has_manifest_block(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_engine_throughput.json"
        payload = json.loads(path.read_text())
        assert payload["manifest"]["schema"] == MANIFEST_SCHEMA

    def test_obs_overhead_payload_has_manifest_block(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"
        payload = json.loads(path.read_text())
        assert payload["manifest"]["schema"] == MANIFEST_SCHEMA
        assert payload["results"], "overhead table must not be empty"
