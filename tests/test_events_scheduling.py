"""Unit tests for the event queue, delay models, and traces."""

import pytest

from repro.errors import SimulationError
from repro.sim.agent import Move, WriteWhiteboard
from repro.sim.engine import Engine
from repro.sim.events import EventQueue
from repro.sim.scheduling import (
    AdversarialSlowestDelay,
    DelayModel,
    LayeredDelay,
    RandomDelay,
    UnitDelay,
)
from repro.sim.trace import Trace, TraceEvent
from repro.topology.hypercube import Hypercube


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, 1)
        q.push(1.0, 2)
        q.push(2.0, 3)
        assert [q.pop().agent_id for _ in range(3)] == [2, 3, 1]

    def test_fifo_among_equal_times(self):
        q = EventQueue()
        for agent in (5, 6, 7):
            q.push(1.0, agent)
        assert [q.pop().agent_id for _ in range(3)] == [5, 6, 7]

    def test_peek(self):
        q = EventQueue()
        assert q.peek() is None
        q.push(2.0, 0)
        assert q.peek().time == 2.0
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, 0)

    def test_bool_len(self):
        q = EventQueue()
        assert not q
        q.push(0.0, 0)
        assert q and len(q) == 1


class TestDelayModels:
    def test_unit(self):
        m = UnitDelay()
        assert m.move_delay(0, 0, 1) == 1.0
        assert m.local_delay(0, 0) == 0.0

    def test_random_bounds_and_reproducibility(self):
        a = RandomDelay(seed=42, low=0.5, high=2.0)
        b = RandomDelay(seed=42, low=0.5, high=2.0)
        values_a = [a.move_delay(0, 0, 1) for _ in range(50)]
        values_b = [b.move_delay(0, 0, 1) for _ in range(50)]
        assert values_a == values_b
        assert all(0.5 <= v <= 2.0 for v in values_a)

    def test_random_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RandomDelay(low=0, high=1)
        with pytest.raises(ValueError):
            RandomDelay(low=3, high=1)

    def test_adversarial_targets_victims(self):
        m = AdversarialSlowestDelay(slow_agents=[3], factor=10)
        assert m.move_delay(3, 0, 1) == 10
        assert m.move_delay(4, 0, 1) == 1

    def test_adversarial_rejects_speedup(self):
        with pytest.raises(ValueError):
            AdversarialSlowestDelay([], factor=0.5)

    def test_layered_slows_nodes(self):
        m = LayeredDelay(node_factor={7: 5.0})
        assert m.move_delay(0, 3, 7) == 5.0
        assert m.move_delay(0, 7, 3) == 1.0

    def test_describe_strings(self):
        assert "Unit" in UnitDelay().describe()
        assert "seed=1" in RandomDelay(seed=1).describe()
        assert "x10" in AdversarialSlowestDelay([1], 10).describe()
        assert "slow nodes" in LayeredDelay({1: 2.0}).describe()


class TestMisbehavingDelayModels:
    """A DelayModel returning negative durations must be caught, not let
    the engine silently schedule events into the past and reorder history."""

    class NegativeMoveDelay(DelayModel):
        def move_delay(self, agent_id, src, dst):
            return -1.0

    class NegativeLocalDelay(DelayModel):
        def move_delay(self, agent_id, src, dst):
            return 1.0

        def local_delay(self, agent_id, node):
            return -0.5

    @staticmethod
    def mover(ctx):
        yield Move(1)

    @staticmethod
    def writer(ctx):
        yield WriteWhiteboard("k", 1)

    def test_negative_move_duration_rejected(self):
        engine = Engine(
            Hypercube(1), [self.mover], delay=self.NegativeMoveDelay(), intruder=None
        )
        with pytest.raises(SimulationError, match="agent 0"):
            engine.run()

    def test_negative_local_duration_rejected(self):
        engine = Engine(
            Hypercube(1), [self.writer], delay=self.NegativeLocalDelay(), intruder=None
        )
        with pytest.raises(SimulationError, match="agent 0"):
            engine.run()

    def test_past_event_rejected_at_schedule_site(self):
        """The queue only checks time >= 0; the engine's _schedule rejects
        anything before the current clock, naming the agent."""
        engine = Engine(Hypercube(1), [self.mover], intruder=None)
        engine.run()
        record = engine._agents[0]
        engine._time = 5.0
        with pytest.raises(SimulationError, match="agent 0"):
            engine._schedule(record, 4.0)


class TestTrace:
    def test_move_queries(self):
        t = Trace()
        t.log(TraceEvent(1.0, "move", 0, 1, {"src": 0}))
        t.log(TraceEvent(2.0, "move", 1, 2, {"src": 0}))
        t.log(TraceEvent(2.0, "terminate", 0, 1))
        assert t.move_count() == 2
        assert t.makespan() == 2.0
        assert t.agents() == [0, 1]
        assert t.per_agent_moves() == {0: 1, 1: 1}
        assert t.move_multiset() == {(0, 1): 1, (0, 2): 1}

    def test_rejects_time_regression(self):
        t = Trace()
        t.log(TraceEvent(2.0, "move", 0, 1, {"src": 0}))
        with pytest.raises(ValueError):
            t.log(TraceEvent(1.0, "move", 0, 0, {"src": 1}))

    def test_first_visits(self):
        t = Trace()
        t.log(TraceEvent(1.0, "move", 0, 1, {"src": 0}))
        t.log(TraceEvent(2.0, "move", 1, 1, {"src": 0}))
        t.log(TraceEvent(3.0, "move", 0, 2, {"src": 1}))
        assert t.first_visits() == [(1.0, 1), (3.0, 2)]

    def test_filtered_events(self):
        t = Trace()
        t.log(TraceEvent(1.0, "wait", 0, 0))
        t.log(TraceEvent(1.0, "move", 0, 1, {"src": 0}))
        assert len(t.events("wait")) == 1
        assert len(t.events()) == 2
        assert len(t) == 2
