"""Shared test fixtures and hypothesis strategies."""

from hypothesis import strategies as st

from repro.topology.generic import GraphAdapter


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=12, max_extra_edges=6):
    """A random connected graph: a random tree plus random extra edges."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parents = [draw(st.integers(min_value=0, max_value=i)) for i in range(n - 1)]
    edges = {(p, i + 1) for i, p in enumerate(parents)}
    extras = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_extra_edges,
        )
    )
    for u, v in extras:
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return GraphAdapter(n, sorted(edges), name="fuzz")
