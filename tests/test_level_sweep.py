"""Tests for the naive level-sweep baseline."""

import pytest

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy
from repro.search.level_sweep import LevelSweepStrategy, level_sweep_peak_agents

DIMS = list(range(0, 8))


@pytest.fixture(scope="module")
def schedules():
    return {d: LevelSweepStrategy().run(d) for d in DIMS}


class TestCorrectness:
    @pytest.mark.parametrize("d", DIMS)
    def test_invariants(self, schedules, d):
        report = verify_schedule(schedules[d])
        assert report.ok, report.summary()

    def test_strict_contiguity(self, schedules):
        assert verify_schedule(schedules[5], check_contiguity_every_move=True).ok


class TestCost:
    @pytest.mark.parametrize("d", DIMS)
    def test_team_matches_formula(self, schedules, d):
        assert schedules[d].team_size == level_sweep_peak_agents(d)

    @pytest.mark.parametrize("d", range(3, 8))
    def test_needs_more_agents_than_clean(self, schedules, d):
        """The ablation point: without the broadcast-tree reuse choreography
        the team roughly doubles."""
        clean_team = formulas.clean_peak_agents(d)
        assert schedules[d].team_size > clean_team

    def test_ratio_stabilizes_above_one(self):
        """The reuse choreography saves a stable ~27% of the agents
        (ratio -> ~1.37 measured across d)."""
        ratios = [
            level_sweep_peak_agents(d) / formulas.clean_peak_agents(d)
            for d in (8, 10, 12, 14)
        ]
        assert all(1.2 < r < 1.6 for r in ratios)

    @pytest.mark.parametrize("d", range(2, 8))
    def test_moves_O_n_log_n(self, schedules, d):
        n = 1 << d
        assert schedules[d].total_moves <= 2 * n * d

    def test_registered(self):
        assert get_strategy("level-sweep").name == "level-sweep"
