"""Cross-validation of the two node-search semantics implementations.

``repro.sim.contamination.ContaminationMap`` (imperative, used by the
engine and verifier) and ``repro.search.contiguous`` (functional state
machine, used by the brute-force searcher) implement the *same* semantics
independently.  These fuzz tests drive both with identical random legal
move sequences and require identical clean sets, guard multisets and
legality judgements at every step — a strong guard against a semantics bug
slipping into either implementation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.search.contiguous import apply_move, initial_state, is_goal, legal_moves
from repro.sim.contamination import ContaminationMap
from repro.topology.generic import (
    grid_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)

GRAPHS = [
    path_graph(6),
    ring_graph(6),
    star_graph(4),
    grid_graph(2, 3),
    hypercube_graph(2),
    hypercube_graph(3),
    tree_graph([0, 0, 1, 1, 2, 2]),
]

FUZZ = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def guards_multiset(cmap: ContaminationMap):
    out = []
    for node in cmap.topology.nodes():
        out.extend([node] * cmap.guards(node))
    return tuple(sorted(out))


@FUZZ
@given(
    graph=st.sampled_from(GRAPHS),
    agents=st.integers(min_value=1, max_value=4),
    steps=st.integers(min_value=0, max_value=40),
    rng=st.randoms(use_true_random=False),
)
def test_random_legal_walks_agree(graph, agents, steps, rng):
    """Both implementations evolve identically under random legal moves."""
    state = initial_state(agents, homebase=0)
    cmap = ContaminationMap(graph, homebase=0, strict=True)
    for _ in range(agents):
        cmap.place_agent(0)

    for _ in range(steps):
        options = sorted(legal_moves(graph, state))
        if not options:
            break
        src, dst = rng.choice(options)
        state = apply_move(graph, state, src, dst)
        cmap.move_agent(src, dst)  # strict: raises if the move were illegal

        assert guards_multiset(cmap) == state.guards
        assert cmap.clean_nodes() == set(state.clean)
        assert cmap.is_monotone()
        assert is_goal(state, graph.n) == cmap.all_clean()


@FUZZ
@given(
    graph=st.sampled_from(GRAPHS),
    agents=st.integers(min_value=1, max_value=3),
    rng=st.randoms(use_true_random=False),
)
def test_illegal_moves_agree_too(graph, agents, rng):
    """Moves the state machine rejects are exactly the ones the imperative
    map flags as recontaminating."""
    state = initial_state(agents, homebase=0)
    # walk a few random legal steps first
    for _ in range(rng.randrange(0, 10)):
        options = sorted(legal_moves(graph, state))
        if not options:
            break
        state = apply_move(graph, state, *rng.choice(options))

    legal = set(legal_moves(graph, state))
    # enumerate every physically possible move and compare judgements
    guard_counts = {}
    for node in state.guards:
        guard_counts[node] = guard_counts.get(node, 0) + 1
    for src in sorted(set(state.guards)):
        for dst in graph.neighbors(src):
            cmap = ContaminationMap.from_state(
                graph, guard_counts, set(state.clean), strict=False
            )
            cmap.move_agent(src, dst)
            judged_safe = cmap.is_monotone()
            assert judged_safe == ((src, dst) in legal), (src, dst)


class TestVerifierFastMode:
    """The no-contiguity fast path gives the same verdicts on real
    schedules and enables large-dimension verification."""

    def test_fast_mode_agrees_on_small(self):
        from repro.analysis.verify import ScheduleVerifier
        from repro.core.strategy import get_strategy

        for name in ("clean", "visibility", "cloning"):
            schedule = get_strategy(name).run(4)
            full = ScheduleVerifier().verify(schedule)
            fast = ScheduleVerifier(check_contiguity=False).verify(schedule)
            assert full.ok == fast.ok
            assert full.clean_times == fast.clean_times

    @pytest.mark.parametrize("name", ["visibility", "cloning"])
    def test_large_dimension_stress(self, name):
        """d = 11 (2048 nodes): exact counts and monotone verification at
        scale (contiguity BFS skipped for speed)."""
        from repro.analysis import formulas
        from repro.analysis.verify import ScheduleVerifier
        from repro.core.strategy import get_strategy

        schedule = get_strategy(name).run(11)
        report = ScheduleVerifier(check_contiguity=False).verify(schedule)
        assert report.monotone and report.complete and report.intruder_captured
        if name == "visibility":
            assert schedule.total_moves == formulas.visibility_moves_exact(11)
        else:
            assert schedule.total_moves == formulas.cloning_moves(11)

    def test_large_clean_stress(self):
        from repro.analysis import formulas
        from repro.analysis.verify import ScheduleVerifier
        from repro.core.strategy import get_strategy

        schedule = get_strategy("clean").run(10)
        report = ScheduleVerifier(check_contiguity=False).verify(schedule)
        assert report.monotone and report.complete
        assert schedule.team_size == formulas.clean_peak_agents(10)
