"""Pin the public API surface: exports resolve and stay stable."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.topology",
    "repro.core",
    "repro.sim",
    "repro.protocols",
    "repro.analysis",
    "repro.search",
    "repro.viz",
]


class TestRootExports:
    def test_all_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_key_entry_points_present(self):
        for name in (
            "Hypercube",
            "BroadcastTree",
            "get_strategy",
            "verify_schedule",
            "compute_metrics",
            "Engine",
            "Schedule",
            "formulas",
        ):
            assert name in repro.__all__

    def test_version_format(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))


@pytest.mark.parametrize("package", SUBPACKAGES)
class TestSubpackageExports:
    def test_all_declared_and_resolvable(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert getattr(module, name, None) is not None, f"{package}.{name}"

    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))


class TestStrategyRegistryStability:
    def test_builtin_strategy_names(self):
        from repro.core.strategy import available_strategies

        assert set(available_strategies()) >= {
            "clean",
            "visibility",
            "cloning",
            "synchronous",
            "level-sweep",
        }

    def test_models_declared(self):
        from repro.core.strategy import available_strategies, get_strategy

        for name in available_strategies():
            strategy = get_strategy(name)
            assert strategy.model in {
                "whiteboard",
                "visibility",
                "cloning",
                "synchronous",
            }, name


class TestExperimentIdsStability:
    def test_every_design_md_experiment_has_a_runner(self):
        """The experiment ids promised in DESIGN.md's index exist in the
        registry (keeps docs and code from drifting apart)."""
        from pathlib import Path

        from repro.analysis.experiments import experiment_ids

        design = Path(__file__).parent.parent / "DESIGN.md"
        text = design.read_text()
        import re

        promised = set(re.findall(r"^\| (F\d|T\d|E\d|A\d) \|", text, re.MULTILINE))
        assert promised  # the table is still there
        assert promised <= set(experiment_ids())
