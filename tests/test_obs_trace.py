"""Tests for hierarchical spans (``repro.obs.trace``).

Covers the context-manager nesting discipline, error propagation,
after-the-fact recording, cross-process grafting (``attach``), the
canonical span-tree digest (invariant to ids, sibling order and volatile
attributes), the process-wide active-tracer global, and the render
helpers backing ``repro-search trace``.
"""

import pytest

from repro.obs.trace import (
    VOLATILE_ATTRS,
    Tracer,
    critical_path,
    get_active_tracer,
    new_run_id,
    render_span_tree,
    render_trace,
    self_times,
    set_active_tracer,
    span_tree_digest,
)


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def make_tracer() -> Tracer:
    return Tracer(run_id="test-run", clock=FakeClock())


class TestSpanLifecycle:
    def test_nesting_assigns_parents(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_durations_from_injected_clock(self):
        tracer = make_tracer()
        with tracer.span("op") as span:
            pass
        assert span.status == "ok"
        assert span.duration == pytest.approx(1.0)  # one clock tick inside

    def test_exception_marks_error_and_reraises(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError: boom"
        assert tracer.current is None  # stack unwound

    def test_open_span_has_zero_duration(self):
        tracer = make_tracer()
        with tracer.span("open") as span:
            assert span.duration == 0.0

    def test_record_span_grafts_under_current(self):
        tracer = make_tracer()
        with tracer.span("parent") as parent:
            child = tracer.record_span("late", start=5.0, end=7.0, k=1)
        assert child.parent_id == parent.span_id
        assert child.duration == pytest.approx(2.0)
        assert child.attrs == {"k": 1}

    def test_to_records_round_trip(self):
        tracer = make_tracer()
        with tracer.span("a", x=1):
            with tracer.span("b"):
                pass
        records = tracer.to_records()
        assert [r["name"] for r in records] == ["a", "b"]
        assert records[1]["parent"] == records[0]["span"]
        assert records[0]["attrs"] == {"x": 1}
        assert all(r["status"] == "ok" for r in records)


class TestAttach:
    def test_worker_forest_is_rewritten_into_parent_ids(self):
        worker = make_tracer()
        with worker.span("worker.job"):
            with worker.span("inner"):
                pass
        parent = make_tracer()
        with parent.span("exec.job") as anchor:
            grafted = parent.attach(worker.to_records())
        assert grafted[0].parent_id == anchor.span_id
        assert grafted[1].parent_id == grafted[0].span_id
        # ids are local handles: no collisions with the parent's own spans
        assert len({s.span_id for s in parent.spans}) == len(parent.spans)

    def test_attach_without_anchor_creates_roots(self):
        worker = make_tracer()
        with worker.span("worker.job"):
            pass
        parent = make_tracer()
        (root,) = parent.attach(worker.to_records())
        assert root.parent_id is None


class TestDigest:
    def _forest(self, order=(0, 1)):
        """Two sibling children under one root, emitted in ``order``."""
        tracer = make_tracer()
        with tracer.span("root"):
            names = ["left", "right"]
            for i in order:
                with tracer.span(names[i], idx=names[i]):
                    pass
        return tracer.to_records()

    def test_invariant_to_sibling_order(self):
        assert span_tree_digest(self._forest((0, 1))) == span_tree_digest(
            self._forest((1, 0))
        )

    def test_invariant_to_volatile_attributes(self):
        def forest(attempt):
            tracer = make_tracer()
            with tracer.span("job", attempt=attempt, pid=attempt * 100, stable="s"):
                pass
            return tracer.to_records()

        assert span_tree_digest(forest(1)) == span_tree_digest(forest(2))
        assert "attempt" in VOLATILE_ATTRS and "pid" in VOLATILE_ATTRS

    def test_sensitive_to_structure_and_stable_attrs(self):
        base = self._forest()

        tracer = make_tracer()
        with tracer.span("root"):
            with tracer.span("left", idx="left"):
                pass
            with tracer.span("right", idx="CHANGED"):
                pass
        assert span_tree_digest(base) != span_tree_digest(tracer.to_records())

    def test_sensitive_to_status(self):
        ok = self._forest()
        tracer = make_tracer()
        with tracer.span("root"):
            for name in ("left", "right"):
                try:
                    with tracer.span(name, idx=name):
                        if name == "right":
                            raise RuntimeError("x")
                except RuntimeError:
                    pass
        assert span_tree_digest(ok) != span_tree_digest(tracer.to_records())


class TestActiveTracer:
    def test_set_returns_previous_and_restores(self):
        assert get_active_tracer() is None
        first = make_tracer()
        assert set_active_tracer(first) is None
        try:
            second = make_tracer()
            assert set_active_tracer(second) is first
            assert get_active_tracer() is second
        finally:
            set_active_tracer(None)
        assert get_active_tracer() is None

    def test_run_ids_are_fresh(self):
        assert new_run_id() != new_run_id()
        assert len(new_run_id()) == 12


class TestAnalysis:
    def _records(self):
        tracer = make_tracer()
        with tracer.span("run"):
            with tracer.span("fast"):
                pass
            with tracer.span("slow"):
                with tracer.span("leaf"):
                    pass
                # widen `slow` beyond `fast` (extra clock ticks)
                tracer._clock()
                tracer._clock()
        return tracer.to_records()

    def test_critical_path_follows_longest_children(self):
        names = [r["name"] for r in critical_path(self._records())]
        assert names == ["run", "slow", "leaf"]

    def test_self_times_subtract_children(self):
        ranked = dict((name, sec) for name, sec, _ in self_times(self._records()))
        assert set(ranked) == {"run", "fast", "slow", "leaf"}
        assert all(sec >= 0.0 for sec in ranked.values())

    def test_empty_forest(self):
        assert critical_path([]) == []
        assert self_times([]) == []
        assert render_span_tree([]) == "(no spans)"


class TestRender:
    def test_tree_shows_hierarchy_and_error_marker(self):
        tracer = make_tracer()
        with tracer.span("run", d=4):
            try:
                with tracer.span("bad"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
        text = render_span_tree(tracer.to_records())
        assert "run" in text and "bad" in text
        assert "[d=4]" in text
        assert "!" in text  # error marker
        assert "`- bad" in text

    def test_max_depth_truncates(self):
        tracer = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        text = render_span_tree(tracer.to_records(), max_depth=2)
        assert "b" in text and "c" not in text

    def test_render_trace_sections(self):
        text = render_trace(TestAnalysis()._records(), top=2)
        assert "critical path:" in text
        assert "top self-time:" in text
        assert text.count("\n\n") == 2  # tree / path / table
